"""Tests for the batch diffusion engine (repro.engine).

The load-bearing properties: the engine is *deterministic* — batched
``ncp_profile`` is bit-identical to the historical serial triple loop, and
the worker count never changes any result — and its outcomes reconstruct
exactly what the one-at-a-time high-level API returns.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import PRNibbleParams, cluster_many, local_cluster, ncp_profile, pr_nibble
from repro.core.sweep import sweep_cut
from repro.engine import (
    BatchEngine,
    BestClusterReducer,
    CollectReducer,
    DiffusionJob,
    NCPReducer,
    ProcessPoolBackend,
    SerialBackend,
    StatsReducer,
    job_grid,
    resolve_engine,
    run_job,
)
from repro.graph import CSRGraph, planted_partition
from repro.runtime import track


@pytest.fixture(scope="module")
def graph():
    return planted_partition(600, 6, intra_degree=8.0, inter_degree=1.0, seed=5)


@pytest.fixture
def isolated_vertex_graph():
    """Vertex 0 isolated; vertices 1-2 joined by an edge."""
    return CSRGraph(np.asarray([0, 0, 1, 2]), np.asarray([2, 1]))


def legacy_ncp_loop(graph, seed_array, alphas, eps_values, limit, parallel=True):
    """The pre-engine ``ncp_profile`` body, verbatim — the golden reference."""
    best = np.full(limit, np.inf, dtype=np.float64)
    runs = 0
    for seed in seed_array.tolist():
        for alpha in alphas:
            for eps in eps_values:
                params = PRNibbleParams(alpha=alpha, eps=eps)
                diffusion = pr_nibble(graph, seed, params, parallel=parallel)
                if diffusion.support_size() == 0:
                    continue
                sweep = sweep_cut(graph, diffusion.vector, parallel=parallel)
                runs += 1
                count = min(len(sweep.order), limit)
                phis = sweep.conductances[:count]
                valid = phis > 0.0
                np.minimum.at(best, np.flatnonzero(valid), phis[valid])
    return best, runs


class TestJobs:
    def test_make_normalises_seeds(self):
        assert DiffusionJob.make(3).seeds == (3,)
        assert DiffusionJob.make(np.asarray([4, 5])).seeds == (4, 5)
        assert DiffusionJob.make([6]).params == {}

    def test_describe(self):
        job = DiffusionJob.make(1, params={"eps": 1e-4, "alpha": 0.1})
        assert job.describe() == "pr-nibble[1] alpha=0.1 eps=0.0001"

    def test_grid_order_matches_serial_triple_loop(self):
        jobs = list(job_grid([7, 9], "pr-nibble", {"alpha": (0.1, 0.01), "eps": (1e-3, 1e-4)}))
        assert len(jobs) == 8
        assert [j.seeds[0] for j in jobs] == [7, 7, 7, 7, 9, 9, 9, 9]
        assert [j.params["alpha"] for j in jobs[:4]] == [0.1, 0.1, 0.01, 0.01]
        assert [j.params["eps"] for j in jobs[:2]] == [1e-3, 1e-4]

    def test_grid_fixed_params_and_distinct_rng(self):
        jobs = list(job_grid([1, 2], "rand-hk-pr", {"t": (2.0, 4.0)}, params={"num_walks": 50}, rng=10))
        assert all(j.params["num_walks"] == 50 for j in jobs)
        assert [j.rng for j in jobs] == [10, 11, 12, 13]

    def test_empty_grid_yields_one_job_per_seed(self):
        jobs = list(job_grid([1, 2, 3]))
        assert len(jobs) == 3
        assert all(j.params == {} for j in jobs)

    def test_empty_grid_axis_yields_no_jobs(self):
        # An axis with zero values empties the product, exactly like the
        # nested loop the grid mirrors — it must not fall back to defaults.
        assert list(job_grid([1, 2], grid={"alpha": ()})) == []

    def test_ncp_with_empty_alphas_does_no_runs(self, graph):
        profile = ncp_profile(graph, seeds=[0], alphas=(), eps_values=(1e-4,))
        assert profile.runs == 0
        assert not np.isfinite(profile.conductance).any()


class TestRunJob:
    def test_matches_local_cluster(self, graph):
        job = DiffusionJob.make(0, params={"alpha": 0.05, "eps": 1e-4})
        outcome = run_job(graph, job)
        reference = local_cluster(graph, 0, alpha=0.05, eps=1e-4)
        assert np.array_equal(outcome.cluster, reference.cluster)
        assert outcome.conductance == reference.conductance
        assert outcome.support_size == reference.diffusion.support_size()
        rebuilt = outcome.to_cluster_result()
        assert rebuilt.params == reference.params
        assert rebuilt.diffusion.pushes == reference.diffusion.pushes

    def test_unknown_method_raises(self, graph):
        with pytest.raises(ValueError, match="unknown method"):
            run_job(graph, DiffusionJob.make(0, method="page-rank"))

    def test_empty_support_yields_no_sweep(self, isolated_vertex_graph):
        outcome = run_job(
            isolated_vertex_graph, DiffusionJob.make(0), parallel=False
        )
        assert outcome.support_size == 0
        assert outcome.sweep is None
        assert outcome.conductance == float("inf")
        assert outcome.size == 0
        with pytest.raises(ValueError, match="no cluster"):
            outcome.to_cluster_result()

    def test_vector_omitted_when_disabled(self, graph):
        outcome = run_job(graph, DiffusionJob.make(0), include_vector=False)
        assert outcome.vector_keys is None
        with pytest.raises(ValueError, match="include_vectors"):
            outcome.diffusion()


class TestEngineDeterminism:
    ALPHAS = (0.05, 0.01)
    EPS = (1e-4,)

    def test_batched_ncp_bit_identical_to_legacy_loop(self, graph):
        seeds = np.asarray([0, 150, 300, 450, 599])
        expected, expected_runs = legacy_ncp_loop(
            graph, seeds, self.ALPHAS, self.EPS, graph.num_vertices
        )
        profile = ncp_profile(graph, seeds=seeds, alphas=self.ALPHAS, eps_values=self.EPS)
        assert profile.runs == expected_runs
        assert np.array_equal(profile.conductance, expected)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_count_does_not_change_results(self, graph, workers):
        seeds = np.asarray([0, 150, 300, 450, 599])
        serial = ncp_profile(graph, seeds=seeds, alphas=self.ALPHAS, eps_values=self.EPS)
        pooled = ncp_profile(
            graph, seeds=seeds, alphas=self.ALPHAS, eps_values=self.EPS, workers=workers
        )
        assert pooled.runs == serial.runs
        assert np.array_equal(pooled.conductance, serial.conductance)

    def test_ncp_rng_path_unchanged(self, graph):
        """num_seeds + rng draws the same seeds the legacy code drew."""
        from repro.core.seeding import random_seeds

        expected_seeds = random_seeds(graph, 6, rng=np.random.default_rng(4))
        expected, expected_runs = legacy_ncp_loop(
            graph, expected_seeds, self.ALPHAS, self.EPS, graph.num_vertices
        )
        profile = ncp_profile(
            graph, num_seeds=6, alphas=self.ALPHAS, eps_values=self.EPS, rng=4
        )
        assert profile.runs == expected_runs
        assert np.array_equal(profile.conductance, expected)

    def test_process_backend_preserves_job_order(self, graph):
        jobs = [DiffusionJob.make(s, params={"alpha": 0.05, "eps": 1e-4}) for s in range(8)]
        engine = BatchEngine(graph, backend="process", workers=2)
        outcomes = engine.run(jobs)
        assert [o.index for o in outcomes] == list(range(8))
        assert [o.job.seeds[0] for o in outcomes] == list(range(8))


class TestClusterMany:
    def test_matches_local_cluster_loop(self, graph):
        seeds = [0, 100, 200, 300]
        batch = cluster_many(graph, seeds, alpha=0.05, eps=1e-4)
        for seed, result in zip(seeds, batch):
            reference = local_cluster(graph, seed, alpha=0.05, eps=1e-4)
            assert np.array_equal(result.cluster, reference.cluster)
            assert result.conductance == reference.conductance
            assert result.algorithm == "pr-nibble"

    def test_workers_equivalent(self, graph):
        seeds = [0, 100, 200, 300]
        serial = cluster_many(graph, seeds, alpha=0.05, eps=1e-4)
        pooled = cluster_many(graph, seeds, alpha=0.05, eps=1e-4, workers=2)
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.cluster, b.cluster)
            assert a.conductance == b.conductance

    def test_randomized_method_backend_invariant(self, graph):
        serial = cluster_many(graph, [0, 50], method="rand-hk-pr", rng=3, num_walks=500)
        pooled = cluster_many(
            graph, [0, 50], method="rand-hk-pr", rng=3, num_walks=500, workers=2
        )
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.cluster, b.cluster)

    def test_unknown_method_raises(self, graph):
        with pytest.raises(ValueError, match="unknown method"):
            cluster_many(graph, [0], method="page-rank")

    def test_rejects_vectorless_engine_up_front(self, graph):
        engine = BatchEngine(graph, include_vectors=False)
        with pytest.raises(ValueError, match="include_vectors=True"):
            cluster_many(graph, [0], engine=engine)


class TestReducers:
    def _outcomes(self, graph, seeds=(0, 100, 200)):
        jobs = [DiffusionJob.make(s, params={"alpha": 0.05, "eps": 1e-4}) for s in seeds]
        return BatchEngine(graph).run(jobs)

    def test_collect_preserves_order(self, graph):
        outcomes = self._outcomes(graph)
        assert [o.index for o in outcomes] == [0, 1, 2]

    def test_stats_reducer_counts(self, graph):
        outcomes = self._outcomes(graph)
        reducer = StatsReducer()
        for outcome in outcomes:
            reducer.update(outcome)
        stats = reducer.finalize()
        assert stats.jobs == 3 and stats.completed == 3
        assert stats.total_pushes == sum(o.pushes for o in outcomes)
        assert stats.by_method == {"pr-nibble": 3}
        assert stats.total_work > 0 and stats.max_depth > 0
        assert stats.jobs_per_second(0.5) == pytest.approx(6.0)

    def test_best_cluster_reducer_picks_minimum(self, graph):
        outcomes = self._outcomes(graph)
        reducer = BestClusterReducer()
        for outcome in outcomes:
            reducer.update(outcome)
        best = reducer.finalize()
        assert best is not None
        assert best.conductance == min(o.conductance for o in outcomes)

    def test_ncp_reducer_skips_empty_support(self, isolated_vertex_graph):
        outcome = run_job(isolated_vertex_graph, DiffusionJob.make(0), parallel=False)
        reducer = NCPReducer(3)
        reducer.update(outcome)
        profile = reducer.finalize()
        assert profile.runs == 0
        assert not np.isfinite(profile.conductance).any()

    def test_ncp_reducer_validates_max_size(self):
        with pytest.raises(ValueError):
            NCPReducer(0)

    def test_multiple_reducers_single_pass(self, graph):
        jobs = [DiffusionJob.make(s, params={"alpha": 0.05, "eps": 1e-4}) for s in (0, 100)]
        collect, stats = BatchEngine(graph).run(jobs, [CollectReducer(), StatsReducer()])
        assert len(collect) == 2
        assert stats.jobs == 2


class TestNonForkStartMethods:
    """Non-fork start methods fan out for real through the shared-memory
    graph plane — no warning, no serial fallback, bit-identical outcomes —
    and every exported segment is unlinked by engine shutdown."""

    JOBS = staticmethod(
        lambda seeds: [
            DiffusionJob.make(s, params={"alpha": 0.05, "eps": 1e-4}) for s in seeds
        ]
    )

    @pytest.fixture
    def spawn_backend(self):
        if "spawn" not in multiprocessing.get_all_start_methods():  # pragma: no cover
            pytest.skip("spawn start method unavailable on this platform")
        return ProcessPoolBackend(start_method="spawn", workers=2)

    def test_no_warning_and_matches_serial(self, graph, spawn_backend):
        import warnings as warnings_module

        jobs = self.JOBS((0, 100, 200))
        serial = BatchEngine(graph).run(jobs)
        engine = BatchEngine(graph, backend=spawn_backend)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            outcomes = engine.run(jobs)
        assert [o.index for o in outcomes] == [0, 1, 2]
        for reference, outcome in zip(serial, outcomes):
            assert np.array_equal(reference.cluster, outcome.cluster)
            assert outcome.conductance == reference.conductance
            assert outcome.pushes == reference.pushes

    def test_spawn_records_pool_aggregate_cost(self, graph, spawn_backend):
        # Real fan-out means per-job costs accrue in the *workers*: the
        # parent tracker must see the one aggregate "engine" record (work
        # summed, depth maxed), not the per-job edge_map records an
        # in-process fallback would have folded in.
        assert not spawn_backend.folds_into_tracker
        engine = BatchEngine(graph, backend=spawn_backend)
        jobs = self.JOBS((0, 100))
        with track() as tracker:
            outcomes = engine.run(jobs)
        assert "edge_map" not in tracker.by_category
        assert "engine" in tracker.by_category
        assert tracker.work == pytest.approx(sum(o.work for o in outcomes))

    def test_spawn_leaves_no_shared_memory_segments(self, graph, spawn_backend):
        from repro.graph.shared import SEGMENT_PREFIX

        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX host
            pytest.skip("no /dev/shm to audit on this platform")
        BatchEngine(graph, backend=spawn_backend).run(self.JOBS((0, 100)))
        leaked = [f for f in os.listdir(shm_dir) if f.startswith(SEGMENT_PREFIX)]
        assert leaked == []

    def test_abandoned_stream_unlinks_segments(self, graph, spawn_backend):
        from repro.graph.shared import SEGMENT_PREFIX

        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX host
            pytest.skip("no /dev/shm to audit on this platform")
        stream = spawn_backend.stream(graph, self.JOBS((0, 100, 200)), True, True)
        next(stream)  # segments exist while the stream is live
        stream.close()  # abandoning the stream must still clean up
        leaked = [f for f in os.listdir(shm_dir) if f.startswith(SEGMENT_PREFIX)]
        assert leaked == []

    def test_empty_batch(self, graph, spawn_backend):
        assert BatchEngine(graph, backend=spawn_backend).run([]) == []

    def test_forkserver_matches_serial(self, graph):
        if "forkserver" not in multiprocessing.get_all_start_methods():  # pragma: no cover
            pytest.skip("forkserver start method unavailable on this platform")
        jobs = self.JOBS((0, 100))
        serial = BatchEngine(graph).run(jobs)
        backend = ProcessPoolBackend(start_method="forkserver", workers=2)
        outcomes = BatchEngine(graph, backend=backend).run(jobs)
        for reference, outcome in zip(serial, outcomes):
            assert np.array_equal(reference.cluster, outcome.cluster)
            assert outcome.conductance == reference.conductance

    def test_env_var_sets_default_start_method(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert ProcessPoolBackend(workers=2).start_method == "spawn"
        monkeypatch.delenv("REPRO_START_METHOD")
        assert ProcessPoolBackend(workers=2).start_method in (
            multiprocessing.get_all_start_methods()
        )

    def test_fork_backend_never_folds(self, graph):
        if "fork" not in multiprocessing.get_all_start_methods():  # pragma: no cover
            pytest.skip("fork start method unavailable on this platform")
        assert not ProcessPoolBackend(start_method="fork").folds_into_tracker


class TestExecutionSessions:
    """The pool-lifecycle split: one session serves consecutive batches
    over one pool and one graph export, and closes deterministically."""

    JOBS = staticmethod(
        lambda seeds: [
            DiffusionJob.make(s, params={"alpha": 0.05, "eps": 1e-4}) for s in seeds
        ]
    )

    def test_serial_session_consecutive_batches_match_serial(self, graph):
        engine = BatchEngine(graph)
        reference = engine.run(self.JOBS((0, 100, 200, 300)))
        with engine.open_session() as session:
            first = list(session.run(self.JOBS((0, 100))))
            second = list(session.run(self.JOBS((200, 300))))
        assert session.batches == 2
        for expected, outcome in zip(reference, first + second):
            assert np.array_equal(expected.cluster, outcome.cluster)
            assert outcome.conductance == expected.conductance

    def test_pool_session_consecutive_batches_match_serial(self, graph):
        serial = BatchEngine(graph).run(self.JOBS((0, 100, 200, 300)))
        backend = ProcessPoolBackend(workers=2)
        with backend.open_session(graph) as session:
            first = list(session.run(self.JOBS((0, 100))))
            second = list(session.run(self.JOBS((200, 300))))
        assert session.batches == 2
        for expected, outcome in zip(serial, first + second):
            assert np.array_equal(expected.cluster, outcome.cluster)
            assert outcome.conductance == expected.conductance
            assert outcome.pushes == expected.pushes

    def test_closed_session_refuses_further_batches(self, graph):
        session = BatchEngine(graph).open_session()
        session.close()
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.run(self.JOBS((0,)))

    def test_pool_session_close_is_idempotent(self, graph):
        session = ProcessPoolBackend(workers=2).open_session(graph)
        list(session.run(self.JOBS((0,))))
        session.close()
        session.close()
        assert session.closed

    def test_spawn_session_reuses_one_export(self, graph):
        """Consecutive batches reuse the same shared-memory export; close
        unlinks it (the ROADMAP's segment-reuse follow-on)."""
        if "spawn" not in multiprocessing.get_all_start_methods():  # pragma: no cover
            pytest.skip("spawn start method unavailable on this platform")
        from repro.graph.shared import SEGMENT_PREFIX

        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX host
            pytest.skip("no /dev/shm to audit on this platform")
        backend = ProcessPoolBackend(workers=2, start_method="spawn")
        session = backend.open_session(graph)
        try:
            list(session.run(self.JOBS((0, 100))))
            shared = session.shared
            assert shared is not None and not shared.unlinked
            names = set(shared.segment_names())
            assert names <= set(os.listdir(shm_dir))
            list(session.run(self.JOBS((200,))))
            assert session.shared is shared  # same export, no re-export
            live = [f for f in os.listdir(shm_dir) if f.startswith(SEGMENT_PREFIX)]
            assert set(live) == names
        finally:
            session.close()
        assert shared.unlinked
        assert [f for f in os.listdir(shm_dir) if f.startswith(SEGMENT_PREFIX)] == []

    def test_abandoned_map_iterator_shuts_pool_down_on_close(self, graph):
        """Closing an abandoned ``BatchEngine.map`` iterator must terminate
        and join the pool's worker processes, not leave them to GC."""
        before = {p.pid for p in multiprocessing.active_children()}
        engine = BatchEngine(graph, backend=ProcessPoolBackend(workers=2))
        stream = engine.map(self.JOBS((0, 100, 200, 300)))
        next(stream)  # the pool is live mid-batch
        started = [
            p for p in multiprocessing.active_children() if p.pid not in before
        ]
        assert started, "expected live pool workers after first outcome"
        stream.close()  # abandoning the iterator must tear the pool down
        assert all(not p.is_alive() for p in started)


class TestSharedCodePaths:
    """The backend refactor's de-duplication guarantees, asserted on the
    class structure so the old copy-pasted fallback loop cannot return."""

    def test_backends_share_the_inline_loop(self):
        from repro.engine import PoolBackend

        assert issubclass(SerialBackend, PoolBackend)
        assert issubclass(ProcessPoolBackend, PoolBackend)
        # SerialBackend *is* the base loop — no override of stream or the
        # inline runner; ProcessPoolBackend overrides stream only and has
        # no inline execution path of its own.
        assert SerialBackend.stream is PoolBackend.stream
        assert SerialBackend._run_inline is PoolBackend._run_inline
        assert ProcessPoolBackend._run_inline is PoolBackend._run_inline
        assert ProcessPoolBackend.stream is not PoolBackend.stream


class TestEngineConfiguration:
    def test_backend_inference_from_workers(self, graph):
        assert isinstance(BatchEngine(graph).backend, SerialBackend)
        assert isinstance(BatchEngine(graph, workers=1).backend, SerialBackend)
        assert isinstance(BatchEngine(graph, workers=2).backend, ProcessPoolBackend)
        assert BatchEngine(graph, workers=2).workers == 2

    def test_unknown_backend_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown backend"):
            BatchEngine(graph, backend="threads")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 4},
            {"start_method": "spawn"},
            {"schedule": "fifo"},
            {"workers": 4, "schedule": "fifo"},
        ],
    )
    def test_backend_instance_conflicting_kwargs_rejected(self, graph, kwargs):
        """Pool knobs alongside a prebuilt backend used to be silently
        ignored; now the conflict is an error naming the offenders."""
        backend = SerialBackend()
        with pytest.raises(ValueError, match="already constructed"):
            BatchEngine(graph, backend=backend, **kwargs)
        # the same knobs are fine when the backend is built by name, and a
        # bare instance still passes.
        assert BatchEngine(graph, backend=backend).backend is backend

    def test_resolve_engine_passthrough_and_mismatch(self, graph):
        engine = BatchEngine(graph)
        assert resolve_engine(graph, engine) is engine
        other = planted_partition(100, 2, 6.0, 1.0, seed=1)
        with pytest.raises(ValueError, match="different graph"):
            resolve_engine(other, engine)

    def test_resolve_engine_rejects_knobs_alongside_prebuilt_engine(self, graph):
        """The same silent-ignore class fixed on BatchEngine: a ready
        engine plus construction knobs is an error, not a no-op."""
        engine = BatchEngine(graph)
        for kwargs in ({"workers": 4}, {"cache": True}, {"start_method": "spawn"},
                       {"schedule": "fifo"}):
            with pytest.raises(ValueError, match="already constructed"):
                resolve_engine(graph, engine, **kwargs)
        # None / False mean "unset" and still pass the engine through.
        assert resolve_engine(graph, engine, workers=None, cache=False) is engine
        # A different object with the same CSR content (e.g. the same
        # graph reloaded from disk) must pass the fingerprint check.
        from repro.graph import CSRGraph

        copy = CSRGraph(graph.offsets.copy(), graph.neighbors.copy())
        assert copy is not graph
        engine = BatchEngine(graph)
        assert resolve_engine(copy, engine) is engine

    def test_schedule_and_start_method_thread_through(self, graph):
        engine = BatchEngine(graph, backend="process", workers=2, schedule="fifo")
        assert engine.backend.schedule == "fifo"
        assert BatchEngine(graph, backend="process", workers=2).backend.schedule == "cost"
        if "spawn" in multiprocessing.get_all_start_methods():
            built = BatchEngine(graph, backend="process", workers=2, start_method="spawn")
            assert built.backend.start_method == "spawn"

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            ProcessPoolBackend(workers=2, schedule="random")

    def test_unavailable_start_method_rejected(self):
        with pytest.raises(ValueError, match="unavailable"):
            ProcessPoolBackend(start_method="no-such-method")

    def test_empty_job_stream(self, graph):
        assert BatchEngine(graph, backend="process", workers=2).run([]) == []
        assert BatchEngine(graph).run([]) == []

    def test_serial_backend_folds_costs_into_tracker(self, graph):
        engine = BatchEngine(graph)
        with track() as tracker:
            engine.run([DiffusionJob.make(0, params={"alpha": 0.05, "eps": 1e-4})])
        assert tracker.work > 0
        assert "edge_map" in tracker.by_category

    def test_process_backend_records_batch_cost(self, graph):
        engine = BatchEngine(graph, backend="process", workers=2)
        jobs = [DiffusionJob.make(s, params={"alpha": 0.05, "eps": 1e-4}) for s in (0, 100)]
        with track() as tracker:
            outcomes = engine.run(jobs)
        assert "engine" in tracker.by_category
        assert tracker.work == pytest.approx(sum(o.work for o in outcomes))
        assert tracker.depth == pytest.approx(max(o.depth for o in outcomes))
