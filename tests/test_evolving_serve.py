"""Versioned serving: DiffusionService over an evolving graph.

The stale-cache torture test is the centrepiece: clients keep submitting
while ``update()`` advances the chain (migrating the result cache across
versions), and *every* reply must be bit-identical to a cold run on the
version it was admitted against — admission-time versioning means an
update never changes the answer of an already-admitted query, and cache
migration never serves a superseded edge set.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cache import MigrationStats, ResultCache
from repro.core.options import RequestError
from repro.engine import BatchEngine, DiffusionJob
from repro.graph import EvolvingGraph, GraphVersion, planted_partition
from repro.serve import DiffusionService

PARAMS = {"alpha": 0.05, "eps": 1e-4}


@pytest.fixture(scope="module")
def base_graph():
    return planted_partition(600, 6, intra_degree=8.0, inter_degree=1.0, seed=5)


def job_for(seed):
    return DiffusionJob.make(seed, params=dict(PARAMS))


def incident_edge(graph, vertex):
    """A real edge of ``graph`` at ``vertex`` (deletions must be effective)."""
    return (vertex, int(graph.neighbors_of(vertex)[0]))


def disjoint_edge(graph, support):
    """An existing edge whose delta region provably avoids ``support``."""
    for u in range(graph.num_vertices - 1, -1, -1):
        if u in support:
            continue
        neighborhood = set(graph.neighbors_of(u).tolist())
        if neighborhood & support:
            continue
        for w in sorted(neighborhood):
            if w in support or set(graph.neighbors_of(int(w)).tolist()) & support:
                continue
            return (u, int(w))
    raise AssertionError("graph has no edge disjoint from the support")


def assert_matches_cold(outcome, graph, seed):
    (cold,) = BatchEngine(graph).run([job_for(seed)])
    assert outcome.support_size == cold.support_size
    assert outcome.pushes == cold.pushes
    assert outcome.conductance == cold.conductance
    assert np.array_equal(outcome.cluster, cold.cluster)


class TestVersionedAdmission:
    def test_submissions_default_to_latest_version(self, base_graph):
        chain = EvolvingGraph(base_graph)

        async def scenario():
            async with DiffusionService(chain, max_linger=0.0) as service:
                before = await service.submit(job_for(0))
                version, stats = await service.update(
                    deletions=[incident_edge(base_graph, 0)]
                )
                after = await service.submit(job_for(0))
                return before, version, stats, after

        before, version, stats, after = asyncio.run(scenario())
        assert isinstance(version, GraphVersion) and version.version == 1
        assert stats is None  # no cache configured
        assert_matches_cold(before, chain.at(0).graph, 0)
        assert_matches_cold(after, chain.at(1).graph, 0)
        assert before.pushes != after.pushes or before.support_size != after.support_size

    def test_pinned_submission_ignores_later_updates(self, base_graph):
        chain = EvolvingGraph(base_graph)

        async def scenario():
            async with DiffusionService(chain, max_linger=0.0) as service:
                await service.update(deletions=[incident_edge(base_graph, 0)])
                return await service.submit(job_for(0), graph_version=0)

        outcome = asyncio.run(scenario())
        assert_matches_cold(outcome, chain.at(0).graph, 0)

    def test_nonexistent_version_rejected_synchronously(self, base_graph):
        chain = EvolvingGraph(base_graph)

        async def scenario():
            async with DiffusionService(chain, max_linger=0.0) as service:
                with pytest.raises(RequestError) as excinfo:
                    service.submit(job_for(0), graph_version=7)
                return excinfo.value

        error = asyncio.run(scenario())
        assert error.code == 404 and error.field == "graph_version"

    def test_static_service_rejects_graph_version(self, base_graph):
        async def scenario():
            async with DiffusionService(base_graph, max_linger=0.0) as service:
                with pytest.raises(RequestError, match="static graph"):
                    service.submit(job_for(0), graph_version=0)
                with pytest.raises(ValueError, match="EvolvingGraph"):
                    await service.update(insertions=[(0, 5)])

        asyncio.run(scenario())

    def test_stats_count_updates(self, base_graph):
        chain = EvolvingGraph(base_graph)

        async def scenario():
            async with DiffusionService(chain, max_linger=0.0) as service:
                edge = incident_edge(base_graph, 0)
                await service.update(deletions=[edge])
                await service.update(insertions=[edge])
                return service.stats

        stats = asyncio.run(scenario())
        assert stats.updates == 2
        assert "updates=2" in stats.describe()

    def test_update_migrates_cache(self, base_graph):
        chain = EvolvingGraph(base_graph)
        cache = ResultCache()
        # A coarse eps keeps the support inside vertex 0's community, so
        # an update in a far community leaves the entry's profile disjoint
        # from the delta region (and well under the volume guard).
        job = DiffusionJob.make(0, params={"alpha": 0.05, "eps": 1e-3})
        (probe,) = BatchEngine(base_graph, include_vectors=True).run([job])
        far_edge = disjoint_edge(base_graph, set(probe.vector_keys.tolist()))

        async def scenario():
            async with DiffusionService(
                chain, cache=cache, include_vectors=True, max_linger=0.0
            ) as service:
                await service.submit(job)
                # Provably outside the entry's profile: it must survive.
                _, stats = await service.update(deletions=[far_edge])
                replay = await service.submit(job)
                return stats, replay

        stats, replay = asyncio.run(scenario())
        assert isinstance(stats, MigrationStats)
        assert stats.survived >= 1
        assert replay.cached
        (cold,) = BatchEngine(chain.at(1).graph).run([job])
        assert replay.support_size == cold.support_size
        assert np.array_equal(replay.cluster, cold.cluster)


class TestInterleavedUpdatesTorture:
    def test_every_reply_matches_cold_on_its_admitted_version(self, base_graph):
        """Concurrent submissions interleaved with updates, cache enabled.

        Seeds are re-queried across rounds while updates keep advancing
        the chain (touching some queried communities, sparing others, so
        both migration outcomes occur).  Admitted versions are recorded
        at submit time; at the end every reply is compared bit-for-bit
        against a cold engine on exactly that version.
        """
        chain = EvolvingGraph(base_graph)
        cache = ResultCache()
        seeds = (0, 150, 300, 450, 599)
        batches = [
            {"insertions": [(0, 300)], "deletions": []},
            {"insertions": [], "deletions": [(0, 300), (150, 151)]},
            {"insertions": [(450, 460), (599, 598)], "deletions": []},
        ]

        async def scenario():
            replies = []  # (seed, admitted_version, future)
            async with DiffusionService(
                chain,
                cache=cache,
                include_vectors=True,
                max_batch=3,
                max_linger=0.001,
            ) as service:
                assert service.evolving is chain

                def fire(seed, version=None):
                    # An unpinned submission is stamped with the latest
                    # version *at the submit instant*; when an update is
                    # concurrently applying on the worker thread, that
                    # instant can fall on either side of the advance, so
                    # record both candidates and accept either below.
                    before = chain.latest.version
                    future = service.submit(job_for(seed), graph_version=version)
                    after = chain.latest.version
                    candidates = (
                        {version} if version is not None else {before, after}
                    )
                    replies.append((seed, candidates, future))

                for seed in seeds:
                    fire(seed)
                for round_index, batch in enumerate(batches):
                    update_task = asyncio.ensure_future(service.update(**batch))
                    # Interleave: these are admitted while the update runs
                    # on the worker thread, against whatever version is
                    # current at their submit instant.
                    for seed in seeds[: 2 + round_index]:
                        fire(seed)
                    await update_task
                    for seed in seeds:
                        fire(seed)
                    fire(seeds[round_index], version=0)  # pinned to the root
                await asyncio.gather(*(future for _, _, future in replies))
                return [
                    (seed, candidates, future.result())
                    for seed, candidates, future in replies
                ], service.stats

        replies, stats = asyncio.run(scenario())
        assert stats.updates == len(batches)
        assert len(chain) == len(batches) + 1
        cold_engines = {
            k: BatchEngine(chain.at(k).graph) for k in range(len(chain))
        }
        hits = 0
        for seed, candidates, outcome in replies:
            colds = [
                cold_engines[k].run([job_for(seed)])[0] for k in sorted(candidates)
            ]
            assert any(
                outcome.support_size == cold.support_size
                and outcome.pushes == cold.pushes
                and outcome.conductance == cold.conductance
                and np.array_equal(outcome.cluster, cold.cluster)
                for cold in colds
            ), (seed, sorted(candidates))
            hits += outcome.cached
        # The cache must have actually been exercised across versions —
        # otherwise this proves nothing about migration staleness.
        assert hits > 0
