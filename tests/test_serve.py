"""Tests for the async serving plane (repro.serve).

The load-bearing properties: outcomes served to concurrent async clients
are bit-identical to the serial backend; futures resolve in submission
order per client; interactive submissions drain ahead of a bulk backlog;
cancellation (queued or in-flight) never wedges the drain loop; and the
service's long-lived session reuses one pool and one shared-memory graph
export across consecutive micro-batches.

The tests drive the event loop through plain ``asyncio.run`` so they run
under bare pytest (``pytest-asyncio``, declared in the dev extras, is not
required to execute them).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os

import numpy as np
import pytest

from repro.core import async_local_cluster, local_cluster
from repro.engine import BatchEngine, DiffusionJob
from repro.serve import PRIORITIES, DiffusionService, ServiceClosed

PARAMS = {"alpha": 0.05, "eps": 1e-4}


@pytest.fixture(scope="module")
def graph():
    from repro.graph import planted_partition

    return planted_partition(600, 6, intra_degree=8.0, inter_degree=1.0, seed=5)


def jobs_for(seeds):
    return [DiffusionJob.make(seed, params=dict(PARAMS)) for seed in seeds]


def assert_outcomes_match(reference, outcomes):
    assert len(reference) == len(outcomes)
    for expected, outcome in zip(reference, outcomes):
        assert np.array_equal(expected.cluster, outcome.cluster)
        assert outcome.conductance == expected.conductance
        assert outcome.pushes == expected.pushes
        assert outcome.support_size == expected.support_size


class TestServiceResults:
    def test_concurrent_clients_bit_identical_to_serial(self, graph):
        """Three interleaved clients, one service — every outcome matches
        what SerialBackend produces for the same job."""
        client_seeds = {"a": (0, 150, 300), "b": (50, 200), "c": (599, 10, 450, 75)}
        reference = {
            name: BatchEngine(graph).run(jobs_for(seeds))
            for name, seeds in client_seeds.items()
        }

        async def client(service, seeds):
            results = []
            for seed in seeds:
                results.append(await service.submit(jobs_for([seed])[0]))
            return results

        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                return await asyncio.gather(
                    *(client(service, seeds) for seeds in client_seeds.values())
                )

        served = dict(zip(client_seeds, asyncio.run(scenario())))
        for name in client_seeds:
            assert_outcomes_match(reference[name], served[name])

    def test_submit_many_matches_serial(self, graph):
        seeds = (0, 100, 200, 300, 400)
        reference = BatchEngine(graph).run(jobs_for(seeds))

        async def scenario():
            async with DiffusionService(graph, max_batch=2, max_linger=0.0) as service:
                futures = service.submit_many(jobs_for(seeds))
                outcomes = await asyncio.gather(*futures)
                return outcomes, service.stats

        outcomes, stats = asyncio.run(scenario())
        assert_outcomes_match(reference, outcomes)
        # max_batch=2 over 5 jobs forces several micro-batches through the
        # one session.
        assert stats.batches >= 3
        assert stats.completed == len(seeds)

    def test_futures_resolve_in_submission_order_per_client(self, graph):
        """Each client's futures complete in the order it submitted them,
        even with two clients interleaving onto shared micro-batches."""

        async def scenario():
            completions: dict[str, list[int]] = {"a": [], "b": []}

            def track(client, position, future):
                future.add_done_callback(
                    lambda _: completions[client].append(position)
                )

            async with DiffusionService(graph, max_batch=3, max_linger=0.01) as service:
                futures = []
                for position, (seed_a, seed_b) in enumerate(
                    zip((0, 150, 300, 450), (50, 200, 350, 500))
                ):
                    future_a = service.submit(jobs_for([seed_a])[0])
                    future_b = service.submit(jobs_for([seed_b])[0], priority="bulk")
                    track("a", position, future_a)
                    track("b", position, future_b)
                    futures += [future_a, future_b]
                await asyncio.gather(*futures)
            return completions

        completions = asyncio.run(scenario())
        assert completions["a"] == sorted(completions["a"])
        assert completions["b"] == sorted(completions["b"])

    def test_interactive_drains_ahead_of_bulk_backlog(self, graph):
        """An interactive query submitted behind a queued bulk backlog
        completes before the backlog's tail."""

        async def scenario():
            order: list[str] = []
            async with DiffusionService(graph, max_batch=2, max_linger=0.0) as service:
                bulk = service.submit_many(jobs_for((0, 100, 200, 300, 400, 500)))
                interactive = service.submit(jobs_for([599])[0])
                interactive.add_done_callback(lambda _: order.append("interactive"))
                bulk[-1].add_done_callback(lambda _: order.append("bulk-tail"))
                await asyncio.gather(interactive, *bulk)
            return order

        assert asyncio.run(scenario()) == ["interactive", "bulk-tail"]

    def test_max_batch_cost_bounds_micro_batches(self, graph):
        """With a cost cap below two jobs' estimate, every batch carries
        exactly one job (the cap never starves: one job always admitted)."""
        from repro.engine import estimate_cost

        job = jobs_for([0])[0]
        cap = estimate_cost(job) * 1.5

        async def scenario():
            async with DiffusionService(
                graph, max_linger=0.01, max_batch_cost=cap
            ) as service:
                futures = service.submit_many(jobs_for((0, 100, 200)))
                await asyncio.gather(*futures)
                return service.stats.batches

        assert asyncio.run(scenario()) == 3


class TestServiceLifecycle:
    def test_cancellation_of_pending_future_does_not_wedge_drain(self, graph):
        """Cancelling queued futures skips them; later submissions on the
        same service still complete."""

        async def scenario():
            async with DiffusionService(graph, max_linger=0.2) as service:
                futures = service.submit_many(jobs_for((0, 100, 200, 300)))
                futures[1].cancel()
                futures[2].cancel()
                kept = await asyncio.gather(futures[0], futures[3])
                follow_up = await service.submit(jobs_for([450])[0])
                return kept, follow_up, service.stats

        kept, follow_up, stats = asyncio.run(scenario())
        reference = BatchEngine(graph).run(jobs_for((0, 300, 450)))
        assert_outcomes_match(reference, [*kept, follow_up])
        assert stats.cancelled == 2
        assert stats.completed == 3

    def test_submit_after_close_raises(self, graph):
        async def scenario():
            service = DiffusionService(graph)
            async with service:
                await service.submit(jobs_for([0])[0])
            with pytest.raises(ServiceClosed):
                service.submit(jobs_for([0])[0])

        asyncio.run(scenario())

    def test_close_drains_queued_submissions(self, graph):
        """close() resolves everything already submitted before tearing
        the session down."""

        async def scenario():
            service = DiffusionService(graph, max_linger=0.05)
            futures = None

            async def run():
                nonlocal futures
                futures = service.submit_many(jobs_for((0, 150)))
                await service.close()
                return await asyncio.gather(*futures)

            return await run()

        outcomes = asyncio.run(scenario())
        assert_outcomes_match(BatchEngine(graph).run(jobs_for((0, 150))), outcomes)

    def test_invalid_submissions_rejected_synchronously(self, graph):
        async def scenario():
            async with DiffusionService(graph) as service:
                with pytest.raises(ValueError, match="unknown method"):
                    service.submit(DiffusionJob.make(0, method="page-rank"))
                with pytest.raises(ValueError, match="out of range"):
                    service.submit(DiffusionJob.make(graph.num_vertices + 5))
                # The options layer attributes bad values to the canonical
                # parameter name (field "params.epsilon"), not raw kwargs.
                with pytest.raises(ValueError, match="invalid pr-nibble parameter 'epsilon'") as info:
                    service.submit(DiffusionJob.make(0, params={"epsilon": 1e-4}))
                assert getattr(info.value, "field", None) == "params.epsilon"
                with pytest.raises(ValueError, match="unknown priority"):
                    service.submit(jobs_for([0])[0], priority="urgent")
                # the drain loop survived all four rejections
                outcome = await service.submit(jobs_for([0])[0])
                return outcome

        outcome = asyncio.run(scenario())
        assert outcome.size > 0

    def test_constructor_validation(self, graph):
        with pytest.raises(ValueError, match="max_batch"):
            DiffusionService(graph, max_batch=0)
        with pytest.raises(ValueError, match="max_linger"):
            DiffusionService(graph, max_linger=-1.0)
        with pytest.raises(ValueError, match="max_batch_cost"):
            DiffusionService(graph, max_batch_cost=0.0)
        assert PRIORITIES == ("interactive", "bulk")

    def test_failed_start_closes_the_service(self, graph):
        """A pool that cannot start must not leak the drain task or the
        worker thread: start() re-raises with the service closed."""

        async def scenario():
            service = DiffusionService(graph)

            def broken_open_session():
                raise RuntimeError("no fds left")

            service.engine.open_session = broken_open_session
            with pytest.raises(RuntimeError, match="no fds left"):
                await service.start()
            assert service._drain_task is None
            assert service._executor is None
            with pytest.raises(ServiceClosed):
                service.submit(jobs_for([0])[0])

        asyncio.run(scenario())

    def test_engine_with_conflicting_knobs_rejected(self, graph):
        """resolve_engine (which the service funnels through) rejects pool
        knobs alongside a prebuilt engine instead of ignoring them."""
        engine = BatchEngine(graph)
        with pytest.raises(ValueError, match="already constructed"):
            DiffusionService(graph, engine=engine, workers=4)
        with pytest.raises(ValueError, match="cache"):
            DiffusionService(graph, engine=engine, cache=True)
        assert DiffusionService(graph, engine=engine).engine is engine

    def test_close_without_start_is_a_noop(self, graph):
        async def scenario():
            service = DiffusionService(graph)
            await service.close()
            with pytest.raises(ServiceClosed):
                service.submit(jobs_for([0])[0])

        asyncio.run(scenario())


class TestServiceCache:
    def test_hot_queries_replay_from_service_cache(self, graph):
        async def scenario():
            async with DiffusionService(graph, cache=True) as service:
                first = await service.submit(jobs_for([0])[0])
                second = await service.submit(jobs_for([0])[0])
                return first, second, service.stats

        first, second, stats = asyncio.run(scenario())
        assert not first.cached
        assert second.cached
        assert stats.cache_hits == 1
        assert np.array_equal(first.cluster, second.cluster)


class TestAsyncLocalCluster:
    def test_without_service_matches_local_cluster(self, graph):
        reference = local_cluster(graph, 0, **PARAMS)

        async def scenario():
            return await async_local_cluster(graph, 0, **PARAMS)

        result = asyncio.run(scenario())
        assert np.array_equal(result.cluster, reference.cluster)
        assert result.conductance == reference.conductance

    def test_with_service_matches_local_cluster(self, graph):
        reference = local_cluster(graph, 150, **PARAMS)

        async def scenario():
            async with DiffusionService(graph) as service:
                return await async_local_cluster(graph, 150, service=service, **PARAMS)

        result = asyncio.run(scenario())
        assert np.array_equal(result.cluster, reference.cluster)
        assert result.conductance == reference.conductance

    def test_generator_rng_with_service_rejected_for_randomized_methods(self, graph):
        """A Generator cannot ride a picklable job; collapsing it to one
        drawn seed would silently diverge from local_cluster, so it is
        rejected (integer seeds remain equivalent on both paths)."""
        reference = local_cluster(graph, 0, method="rand-hk-pr", rng=3, num_walks=500)

        async def scenario():
            async with DiffusionService(graph) as service:
                with pytest.raises(ValueError, match="integer rng seed"):
                    await async_local_cluster(
                        graph,
                        0,
                        method="rand-hk-pr",
                        rng=np.random.default_rng(3),
                        service=service,
                    )
                # deterministic methods ignore rng — a Generator is harmless
                await async_local_cluster(
                    graph, 0, rng=np.random.default_rng(3), service=service, **PARAMS
                )
                return await async_local_cluster(
                    graph, 0, method="rand-hk-pr", rng=3, service=service,
                    num_walks=500,
                )

        result = asyncio.run(scenario())
        assert np.array_equal(result.cluster, reference.cluster)

    def test_service_for_other_graph_rejected(self, graph):
        from repro.graph import barbell_graph

        async def scenario():
            async with DiffusionService(barbell_graph(8)) as service:
                with pytest.raises(ValueError, match="different graph"):
                    await async_local_cluster(graph, 0, service=service)

        asyncio.run(scenario())

    def test_parallel_override_rejected(self, graph):
        """The service's engine decides parallel; a conflicting per-query
        request errors instead of being silently ignored."""

        async def scenario():
            async with DiffusionService(graph) as service:
                with pytest.raises(ValueError, match="parallel=True"):
                    await async_local_cluster(
                        graph, 0, parallel=False, service=service
                    )

        asyncio.run(scenario())

    def test_vectorless_service_rejected(self, graph):
        async def scenario():
            async with DiffusionService(graph, include_vectors=False) as service:
                with pytest.raises(ValueError, match="include_vectors"):
                    await service.cluster(0)
                # raw outcomes still flow
                outcome = await service.submit(jobs_for([0])[0])
                return outcome

        assert asyncio.run(scenario()).size > 0


class TestServicePool:
    """The serving plane over a real process pool: one pool and one
    shared-memory export serve every micro-batch (exercised under forced
    spawn in CI's shared-memory job)."""

    @pytest.fixture
    def spawn_available(self):
        if "spawn" not in multiprocessing.get_all_start_methods():  # pragma: no cover
            pytest.skip("spawn start method unavailable on this platform")

    def test_pool_service_matches_serial(self, graph):
        seeds = (0, 100, 200, 300)
        reference = BatchEngine(graph).run(jobs_for(seeds))

        async def scenario():
            async with DiffusionService(
                graph, workers=2, max_batch=2, max_linger=0.0
            ) as service:
                outcomes = await asyncio.gather(*service.submit_many(jobs_for(seeds)))
                return outcomes, service.session.batches

        outcomes, batches = asyncio.run(scenario())
        assert_outcomes_match(reference, outcomes)
        assert batches >= 2

    def test_one_export_serves_consecutive_batches(self, graph, spawn_available):
        from repro.graph.shared import SEGMENT_PREFIX

        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX host
            pytest.skip("no /dev/shm to audit on this platform")

        def segments():
            return sorted(
                f for f in os.listdir(shm_dir) if f.startswith(SEGMENT_PREFIX)
            )

        async def scenario():
            async with DiffusionService(
                graph, workers=2, start_method="spawn", max_batch=2, max_linger=0.0
            ) as service:
                await asyncio.gather(*service.submit_many(jobs_for((0, 100, 200, 300))))
                first = segments()
                await asyncio.gather(*service.submit_many(jobs_for((400, 500))))
                second = segments()
                return first, second, service.session.batches

        first, second, batches = asyncio.run(scenario())
        assert batches >= 2
        assert len(first) == 2  # exactly one export: offsets + neighbors
        assert first == second  # ...reused, not re-exported, across batches
        assert segments() == []  # ...and unlinked on close
