"""Tests for the scheduler plane (repro.engine.scheduler).

The load-bearing properties: chunk plans are *partitions* (every job
exactly once, any schedule, any shape of batch), cost-balanced plans obey
the documented max <= 2x mean chunk-cost guarantee, and estimates are
method-aware (the paper's O(1/(eps*alpha)) bound for PR-Nibble pushes,
N x walk-length for the randomized heat kernel).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import DiffusionJob, chunk_costs, estimate_cost, plan_chunks
from repro.engine.scheduler import _MIN_COST
from repro.runtime import (
    ppr_push_work_bound,
    random_walk_work_bound,
    truncated_iteration_work_bound,
)


def pr_job(seed=0, alpha=0.01, eps=1e-4):
    return DiffusionJob.make(seed, params={"alpha": alpha, "eps": eps})


class TestEstimates:
    def test_pr_nibble_matches_paper_bound(self):
        assert estimate_cost(pr_job(alpha=0.01, eps=1e-5)) == ppr_push_work_bound(0.01, 1e-5)

    def test_defaults_filled_like_execution(self):
        # A job with no overrides must cost the same as one spelling out
        # the dataclass defaults — the estimator instantiates the params.
        bare = DiffusionJob.make(0)
        explicit = pr_job(alpha=0.01, eps=1e-6)
        assert estimate_cost(bare) == estimate_cost(explicit)

    def test_eps_dominates_cost(self):
        cheap = estimate_cost(pr_job(eps=1e-3))
        dear = estimate_cost(pr_job(eps=1e-6))
        assert dear == pytest.approx(cheap * 1000)

    def test_rand_hk_scales_with_walks_not_eps(self):
        job = DiffusionJob.make(
            0, method="rand-hk-pr", params={"num_walks": 5000, "max_walk_length": 12}
        )
        assert estimate_cost(job) == random_walk_work_bound(5000, 12)

    def test_nibble_uses_iteration_bound(self):
        job = DiffusionJob.make(
            0, method="nibble", params={"max_iterations": 10, "eps": 1e-4}
        )
        assert estimate_cost(job) == truncated_iteration_work_bound(10, 1e-4)

    def test_hk_pr_is_estimated(self):
        job = DiffusionJob.make(0, method="hk-pr", params={"eps": 1e-5})
        assert estimate_cost(job) > _MIN_COST

    def test_unknown_method_and_bad_params_get_floor_not_exception(self):
        assert estimate_cost(DiffusionJob.make(0, method="page-rank")) == _MIN_COST
        bad = DiffusionJob.make(0, params={"alpha": -3.0})
        assert estimate_cost(bad) == _MIN_COST

    def test_bound_helpers_validate(self):
        with pytest.raises(ValueError):
            ppr_push_work_bound(0.0, 1e-4)
        with pytest.raises(ValueError):
            truncated_iteration_work_bound(0, 1e-4)
        with pytest.raises(ValueError):
            random_walk_work_bound(0, 5)


# A mixed-method, mixed-eps job soup — the workload shape the scheduler
# exists for (costs spanning several orders of magnitude).
job_strategy = st.one_of(
    st.builds(
        pr_job,
        seed=st.integers(0, 99),
        alpha=st.sampled_from([0.5, 0.1, 0.01]),
        eps=st.sampled_from([1e-2, 1e-4, 1e-6, 1e-8]),
    ),
    st.builds(
        lambda seed, walks: DiffusionJob.make(
            seed, method="rand-hk-pr", params={"num_walks": walks}
        ),
        seed=st.integers(0, 99),
        walks=st.sampled_from([100, 10_000, 1_000_000]),
    ),
)


class TestChunkPlans:
    @settings(max_examples=60, deadline=None)
    @given(
        jobs=st.lists(job_strategy, min_size=1, max_size=80),
        workers=st.integers(1, 8),
        schedule=st.sampled_from(["cost", "fifo"]),
    )
    def test_plan_is_a_partition(self, jobs, workers, schedule):
        chunks = plan_chunks(jobs, workers, schedule=schedule)
        seen = [index for chunk in chunks for index, _ in chunk]
        assert sorted(seen) == list(range(len(jobs)))  # every job exactly once
        for chunk in chunks:
            for index, job in chunk:
                assert job is jobs[index]  # indices label the right jobs

    @settings(max_examples=60, deadline=None)
    @given(
        jobs=st.lists(job_strategy, min_size=1, max_size=80),
        workers=st.integers(1, 8),
    )
    def test_cost_chunks_balanced_within_2x_of_mean(self, jobs, workers):
        chunks = plan_chunks(jobs, workers, schedule="cost")
        loads = chunk_costs(chunks)
        mean = sum(loads) / len(loads)
        assert max(loads) <= 2.0 * mean * (1.0 + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(jobs=st.lists(job_strategy, min_size=1, max_size=60), workers=st.integers(1, 8))
    def test_plan_is_deterministic(self, jobs, workers):
        first = plan_chunks(jobs, workers, schedule="cost")
        second = plan_chunks(jobs, workers, schedule="cost")
        assert [[i for i, _ in chunk] for chunk in first] == [
            [i for i, _ in chunk] for chunk in second
        ]

    def test_cost_chunks_dispatch_heaviest_first(self):
        jobs = [pr_job(seed=s, eps=eps) for s, eps in enumerate([*([1e-3] * 10), 1e-7])]
        chunks = plan_chunks(jobs, workers=2, schedule="cost")
        loads = chunk_costs(chunks)
        assert loads == sorted(loads, reverse=True)
        # The one expensive job leads the plan instead of straggling it.
        assert chunks[0][0][0] == 10

    def test_fifo_chunks_are_contiguous_count_based(self):
        jobs = [pr_job(seed=s) for s in range(10)]
        chunks = plan_chunks(jobs, workers=2, schedule="fifo", chunk_size=4)
        assert [[i for i, _ in chunk] for chunk in chunks] == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9],
        ]

    def test_empty_batch_yields_no_chunks(self):
        assert plan_chunks([], workers=4) == []

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            plan_chunks([pr_job()], workers=2, schedule="lifo")

    def test_heavy_jobs_spread_across_chunks(self):
        # Four jobs 100x the rest: cost packing must put each in its own
        # chunk (so four workers attack them concurrently) instead of
        # letting a fifo slice stack them into one straggler.
        heavy = [pr_job(seed=s, eps=1e-8, alpha=0.1) for s in range(4)]
        cheap = [pr_job(seed=s, eps=1e-4, alpha=0.1) for s in range(4, 36)]
        chunks = plan_chunks(heavy + cheap, workers=4, schedule="cost")
        homes = [
            next(n for n, c in enumerate(chunks) if any(i == h for i, _ in c))
            for h in range(4)
        ]
        assert len(set(homes)) == 4

    def test_dominant_job_collapses_chunk_count_not_balance(self):
        # One job carrying ~97% of the batch: no partition can balance it,
        # so the planner shrinks the chunk count to keep max <= 2x mean
        # (makespan stays within 2x optimal — the lone job dominates).
        jobs = [pr_job(seed=0, eps=1e-7), *(pr_job(seed=s, eps=1e-4) for s in range(1, 33))]
        chunks = plan_chunks(jobs, workers=4, schedule="cost")
        loads = chunk_costs(chunks)
        assert max(loads) <= 2.0 * (sum(loads) / len(loads))

    def test_chunk_size_rule_matches_backend_helper(self):
        # The fifo sizing rule (jobs per IPC round-trip) is the historical
        # ProcessPoolBackend._chunk_size: ~8 chunks per worker, capped at
        # 32, floored at 1.
        from repro.engine import ProcessPoolBackend

        backend = ProcessPoolBackend(workers=2)
        assert backend._chunk_size(3) == 1  # fewer jobs than worker slots
        assert backend._chunk_size(160) == 10  # 160 // (2 * 8)
        assert backend._chunk_size(10_000) == 32  # capped
        assert ProcessPoolBackend(workers=2, chunk_size=5)._chunk_size(160) == 5
        jobs = [pr_job(seed=s) for s in range(160)]
        chunks = plan_chunks(jobs, workers=2, schedule="fifo")
        assert {len(c) for c in chunks} == {10}

    def test_custom_estimator_respected(self):
        jobs = [pr_job(seed=s) for s in range(6)]
        flat = plan_chunks(jobs, workers=2, estimator=lambda job: 1.0)
        loads = chunk_costs(flat, estimator=lambda job: 1.0)
        assert max(loads) <= 2.0 * (sum(loads) / len(loads))


class TestEngineIntegration:
    """Scheduling must never change results — only placement and order of
    execution.  (The heavier serial-vs-pool equivalence lives in
    test_engine.py; this asserts the schedules against each other.)"""

    def test_cost_and_fifo_schedules_bit_identical(self):
        from repro.engine import BatchEngine
        from repro.graph import planted_partition

        graph = planted_partition(300, 3, intra_degree=8.0, inter_degree=1.0, seed=2)
        jobs = [
            DiffusionJob.make(s, params={"alpha": 0.05, "eps": eps})
            for s in (0, 50, 100, 150, 200, 250)
            for eps in (1e-3, 1e-5)
        ]
        cost = BatchEngine(graph, backend="process", workers=3, schedule="cost").run(jobs)
        fifo = BatchEngine(graph, backend="process", workers=3, schedule="fifo").run(jobs)
        serial = BatchEngine(graph).run(jobs)
        for a, b, c in zip(cost, fifo, serial):
            assert a.index == b.index == c.index
            assert np.array_equal(a.cluster, b.cluster)
            assert np.array_equal(a.cluster, c.cluster)
            assert a.conductance == b.conductance == c.conductance
