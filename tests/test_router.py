"""Tests for shard-routed execution (repro.engine.router).

The contract: ``BatchEngine(graph, shards=K)`` streams outcomes
bit-identical to the serial backend — for seeds interior to a shard,
adjacent to a cut, and spanning several shards — while placement groups
jobs by home shard, the spill threshold escalates non-local jobs to
whole-graph execution, sessions reuse one sharded export across batches,
and the cache/serve planes compose with the router unchanged.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.engine import (
    BatchEngine,
    DiffusionJob,
    ShardRouter,
    estimate_cost,
    job_grid,
    plan_placement,
    resolve_engine,
)
from repro.graph import ShardedCSR, rand_local
from repro.graph.shared import SEGMENT_PREFIX
from repro.serve import DiffusionService

PARAMS = {"alpha": 0.05, "eps": 1e-4}


def shm_entries():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-POSIX host
        pytest.skip("no /dev/shm to audit on this platform")
    return [f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)]


@pytest.fixture(scope="module")
def graph():
    return rand_local(1200, seed=13)


@pytest.fixture(scope="module")
def jobs(graph):
    grid = {"alpha": (0.05, 0.01), "eps": (1e-4, 1e-5)}
    seeds = range(0, graph.num_vertices, 149)
    return list(job_grid(seeds, "pr-nibble", grid))


@pytest.fixture(scope="module")
def reference(graph, jobs):
    return BatchEngine(graph).run(jobs)


def assert_outcomes_match(reference, outcomes):
    assert len(reference) == len(outcomes)
    for expected, outcome in zip(reference, outcomes):
        assert np.array_equal(expected.cluster, outcome.cluster)
        assert outcome.conductance == expected.conductance
        assert outcome.pushes == expected.pushes
        assert outcome.support_size == expected.support_size


class TestRoutedExecution:
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_bit_identical_to_serial_at_any_shard_count(
        self, graph, jobs, reference, shards
    ):
        outcomes = BatchEngine(graph, shards=shards).run(jobs)
        assert_outcomes_match(reference, outcomes)

    def test_memory_capped_execution_identical(self, graph, jobs, reference):
        outcomes = BatchEngine(graph, shards=4, max_resident_shards=1).run(jobs)
        assert_outcomes_match(reference, outcomes)

    def test_cut_adjacent_and_spanning_seeds(self, graph):
        with ShardedCSR.create(graph, shards=3) as sharded:
            cuts = sharded.map.boundaries[1:-1]
        seeds = [int(c) - 1 for c in cuts] + [int(c) for c in cuts]
        spanning = DiffusionJob.make(seeds, params=dict(PARAMS))
        singles = [DiffusionJob.make(s, params=dict(PARAMS)) for s in seeds]
        batch = [spanning, *singles]
        expected = BatchEngine(graph).run(batch)
        outcomes = BatchEngine(graph, shards=3).run(batch)
        assert_outcomes_match(expected, outcomes)

    def test_spill_fallback_is_identical_and_counted(self, graph, jobs, reference):
        engine = BatchEngine(graph, shards=8, spill_shards=1)
        session = engine.open_session()
        try:
            outcomes = list(session.run(jobs))
            assert_outcomes_match(reference, outcomes)
            assert session.stats.spills > 0  # the fallback path really ran
            assert session.stats.jobs == len(jobs)
        finally:
            session.close()

    def test_rand_hk_pr_routes_deterministically(self, graph):
        batch = [
            DiffusionJob.make(s, method="rand-hk-pr", params={"num_walks": 300}, rng=s)
            for s in (3, 700, 1100)
        ]
        expected = BatchEngine(graph).run(batch)
        outcomes = BatchEngine(graph, shards=4).run(batch)
        assert_outcomes_match(expected, outcomes)

    def test_empty_batch(self, graph):
        assert BatchEngine(graph, shards=3).run([]) == []


class TestPlacement:
    def test_groups_cover_batch_exactly_once(self, graph, jobs):
        with ShardedCSR.create(graph, shards=4) as sharded:
            placement = plan_placement(jobs, sharded)
        indices = sorted(i for _, members in placement for i, _ in members)
        assert indices == list(range(len(jobs)))

    def test_heaviest_group_first(self, graph, jobs):
        with ShardedCSR.create(graph, shards=4) as sharded:
            placement = plan_placement(jobs, sharded)
        loads = [
            sum(estimate_cost(job) for _, job in members) for _, members in placement
        ]
        assert loads == sorted(loads, reverse=True)

    def test_home_of_spanning_seed_set(self, graph):
        with ShardedCSR.create(graph, shards=4) as sharded:
            lo0, _ = sharded.map.span(0)
            lo2, _ = sharded.map.span(2)
            job = DiffusionJob.make([lo0, lo2], params=dict(PARAMS))
            placement = plan_placement([job], sharded)
        assert placement[0][0] == (0, 2)


class TestSessions:
    def test_one_export_serves_consecutive_batches(self, graph, jobs, reference):
        engine = BatchEngine(graph, shards=3)
        session = engine.open_session()
        try:
            names = set(session.sharded.segment_names())
            assert names <= set(shm_entries())
            first = list(session.run(jobs[:4]))
            second = list(session.run(jobs[4:8]))
            assert set(session.sharded.segment_names()) == names  # no re-export
            assert_outcomes_match(reference[:4], first)
            assert_outcomes_match(reference[4:8], second)
            assert session.batches == 2
        finally:
            session.close()
        assert shm_entries() == []

    def test_abandoned_stream_tears_down_export(self, graph, jobs):
        engine = BatchEngine(graph, shards=3)
        iterator = engine.map(jobs)
        next(iterator)
        assert len(shm_entries()) == 6
        iterator.close()
        assert shm_entries() == []

    def test_closed_session_rejects_runs(self, graph):
        session = BatchEngine(graph, shards=2).open_session()
        session.close()
        with pytest.raises(RuntimeError):
            session.run([DiffusionJob.make(0)])


class TestRouterStats:
    """Session-level accounting: spills, view attach/evict counters, and
    the halo hit/miss stats that ride on the same fold."""

    def test_spill_accounting_matches_fallback_runs(self, graph, jobs, reference):
        engine = BatchEngine(graph, shards=8, spill_shards=1)
        session = engine.open_session()
        try:
            outcomes = list(session.run(jobs))
            assert_outcomes_match(reference, outcomes)
            stats = session.stats
            assert 0 < stats.spills <= stats.jobs == len(jobs)
            assert stats.groups == len(stats.jobs_per_home)
            assert sum(stats.jobs_per_home.values()) == len(jobs)
        finally:
            session.close()

    def test_attach_evict_and_halo_counters_fold_into_stats(
        self, graph, jobs, reference
    ):
        engine = BatchEngine(graph, shards=4, max_resident_shards=1)
        session = engine.open_session()
        try:
            outcomes = list(session.run(jobs))
            assert_outcomes_match(reference, outcomes)
            stats = session.stats
            assert stats.lazy_attaches > 0
            assert stats.detaches > 0  # the residency cap actually bit
            assert stats.halo_misses > 0  # rows were populated...
            assert stats.halo_hits > 0  # ...and re-served without attach
            described = stats.describe()
            for field in ("spills=", "attaches=", "halo_hits=", "halo_misses="):
                assert field in described
        finally:
            session.close()

    def test_disabled_halo_records_nothing(self, graph, jobs, reference):
        engine = BatchEngine(graph, shards=4, halo_bytes=0)
        session = engine.open_session()
        try:
            outcomes = list(session.run(jobs))
            assert_outcomes_match(reference, outcomes)
            assert session.stats.halo_hits == 0
            assert session.stats.halo_misses == 0
            assert session.stats.halo_evictions == 0
        finally:
            session.close()


class TestConfiguration:
    def test_backend_name_and_inference(self, graph):
        assert isinstance(BatchEngine(graph, shards=2).backend, ShardRouter)
        assert isinstance(BatchEngine(graph, backend="sharded").backend, ShardRouter)
        router = BatchEngine(graph, backend="sharded", shards=5).backend
        assert router.shards == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 2, "workers": 4},
            {"shards": 2, "start_method": "spawn"},
            {"shards": 2, "schedule": "fifo"},
            {"backend": "serial", "max_resident_shards": 1},
            {"backend": "serial", "halo_bytes": 1024},
            # 0 means "explicitly disabled", not "unset" — it must still be
            # rejected on a backend that has no halo to disable.
            {"backend": "serial", "halo_bytes": 0},
            {"backend": "process", "shards": 2},
        ],
    )
    def test_conflicting_knobs_raise(self, graph, kwargs):
        with pytest.raises(ValueError):
            BatchEngine(graph, **kwargs)

    def test_backend_instance_conflicts(self, graph):
        with pytest.raises(ValueError):
            BatchEngine(graph, backend=ShardRouter(shards=2), shards=4)

    def test_resolve_engine_prebuilt_conflicts(self, graph):
        engine = BatchEngine(graph, shards=2)
        assert resolve_engine(graph, engine) is engine
        with pytest.raises(ValueError):
            resolve_engine(graph, engine, shards=4)
        with pytest.raises(ValueError):
            resolve_engine(graph, engine, max_resident_shards=1)

    def test_resolve_engine_builds_router(self, graph):
        engine = resolve_engine(graph, shards=3, max_resident_shards=2)
        assert isinstance(engine.backend, ShardRouter)
        assert engine.backend.max_resident_shards == 2

    def test_halo_bytes_knob_threads_through(self, graph):
        assert BatchEngine(graph, shards=2, halo_bytes=4096).backend.halo_bytes == 4096
        assert resolve_engine(graph, shards=2, halo_bytes=0).backend.halo_bytes == 0
        with pytest.raises(ValueError):
            ShardRouter(shards=2, halo_bytes=-1)


class TestComposition:
    def test_cache_replays_over_router(self, graph, jobs, reference):
        engine = BatchEngine(graph, shards=3, cache=True)
        first = engine.run(jobs[:20])
        again = engine.run(jobs[:20])
        assert all(outcome.cached for outcome in again)
        assert_outcomes_match(reference[:20], first)
        assert_outcomes_match(reference[:20], again)

    def test_service_over_router(self, graph, jobs, reference):
        async def scenario():
            async with DiffusionService(
                graph, shards=4, max_resident_shards=2, max_batch=4
            ) as service:
                futures = service.submit_many(jobs[:12], priority="bulk")
                return await asyncio.gather(*futures)

        outcomes = asyncio.run(scenario())
        assert_outcomes_match(reference[:12], outcomes)
        assert shm_entries() == []
