"""Tests for graph construction and normalisation (repro.graph.builder)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import (
    edge_arrays_of,
    from_adjacency,
    from_edge_arrays,
    from_edge_list,
    from_networkx,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=0, max_size=120
)


class TestNormalisation:
    def test_symmetrises(self):
        graph = from_edge_list([(0, 1)])
        assert graph.neighbors_of(0).tolist() == [1]
        assert graph.neighbors_of(1).tolist() == [0]

    def test_removes_self_loops(self):
        graph = from_edge_list([(0, 0), (0, 1)])
        assert graph.num_edges == 1
        assert graph.neighbors_of(0).tolist() == [1]

    def test_deduplicates(self):
        graph = from_edge_list([(0, 1), (1, 0), (0, 1), (0, 1)])
        assert graph.num_edges == 1

    def test_isolated_vertices_kept(self):
        graph = from_edge_list([(0, 1)], num_vertices=5)
        assert graph.num_vertices == 5
        assert graph.degree(4) == 0

    def test_empty_edge_list(self):
        graph = from_edge_list([], num_vertices=3)
        assert graph.num_vertices == 3
        assert graph.num_edges == 0

    def test_adjacency_lists_sorted(self):
        graph = from_edge_list([(2, 9), (2, 1), (2, 5)])
        assert graph.neighbors_of(2).tolist() == [1, 5, 9]

    @given(edge_lists)
    def test_invariants_hold_for_arbitrary_input(self, edges):
        graph = from_edge_list(edges)
        graph.check_invariants()
        # Volume is even (every undirected edge has two endpoints).
        assert graph.total_volume == 2 * graph.num_edges


class TestValidation:
    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            from_edge_arrays(np.array([-1]), np.array([0]))

    def test_rejects_too_small_num_vertices(self):
        with pytest.raises(ValueError):
            from_edge_list([(0, 5)], num_vertices=3)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            from_edge_arrays(np.array([0, 1]), np.array([1]))

    def test_rejects_malformed_pairs(self):
        with pytest.raises(ValueError):
            from_edge_list([(0, 1, 2)])  # type: ignore[list-item]


class TestConversions:
    def test_from_adjacency(self):
        graph = from_adjacency({0: [1, 2], 1: [2]})
        assert graph.num_edges == 3
        assert graph.neighbors_of(2).tolist() == [0, 1]

    def test_from_networkx(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.karate_club_graph()
        graph = from_networkx(nx_graph)
        assert graph.num_vertices == nx_graph.number_of_nodes()
        assert graph.num_edges == nx_graph.number_of_edges()
        for u, v in nx_graph.edges():
            assert graph.has_edge(u, v)

    def test_edge_arrays_round_trip(self, figure1):
        sources, targets = edge_arrays_of(figure1)
        assert len(sources) == figure1.num_edges
        assert (sources < targets).all()
        rebuilt = from_edge_arrays(sources, targets, num_vertices=8)
        assert np.array_equal(rebuilt.offsets, figure1.offsets)
        assert np.array_equal(rebuilt.neighbors, figure1.neighbors)

    @given(edge_lists)
    def test_round_trip_any_graph(self, edges):
        graph = from_edge_list(edges, num_vertices=31)
        sources, targets = edge_arrays_of(graph)
        rebuilt = from_edge_arrays(sources, targets, num_vertices=31)
        assert np.array_equal(rebuilt.offsets, graph.offsets)
        assert np.array_equal(rebuilt.neighbors, graph.neighbors)
