"""Tests for the work-depth tracker (repro.runtime.cost_model)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime import (
    WorkDepthTracker,
    current_tracker,
    log2ceil,
    record,
    track,
)


class TestLog2Ceil:
    def test_small_values(self):
        assert log2ceil(0) == 0.0
        assert log2ceil(1) == 0.0
        assert log2ceil(2) == 1.0
        assert log2ceil(3) == 2.0
        assert log2ceil(8) == 3.0
        assert log2ceil(9) == 4.0

    @given(st.integers(min_value=2, max_value=10**9))
    def test_bounds(self, n):
        d = log2ceil(n)
        assert 2 ** (d - 1) < n <= 2**d


class TestTracker:
    def test_record_accumulates(self):
        tracker = WorkDepthTracker()
        tracker.record(10, 2, category="scan")
        tracker.record(5, 1, category="sort")
        assert tracker.work == 15
        assert tracker.depth == 3
        assert tracker.by_category["scan"].work == 10
        assert tracker.by_category["sort"].depth == 1

    def test_rounds_counts_nonzero_depth_records(self):
        tracker = WorkDepthTracker()
        tracker.record(10, 0)
        tracker.record(10, 1)
        tracker.record(10, 2)
        assert tracker.rounds == 2

    def test_negative_rejected(self):
        tracker = WorkDepthTracker()
        with pytest.raises(ValueError):
            tracker.record(-1, 0)
        with pytest.raises(ValueError):
            tracker.record(0, -1)

    def test_snapshot(self):
        tracker = WorkDepthTracker()
        tracker.record(3, 1, category="hash")
        assert tracker.snapshot() == {"hash": (3.0, 1.0)}

    def test_merge(self):
        a = WorkDepthTracker()
        a.record(5, 1, category="scan")
        b = WorkDepthTracker()
        b.record(7, 2, category="scan")
        b.record(1, 1, category="sort")
        a.merge(b)
        assert a.work == 13
        assert a.depth == 4
        assert a.by_category["scan"].work == 12
        assert a.by_category["sort"].work == 1


class TestTrackContext:
    def test_record_noop_outside_context(self):
        assert current_tracker() is None
        record(1000, 10)  # must not raise and must not leak anywhere

    def test_track_captures(self):
        with track() as tracker:
            record(42, 3, category="filter")
        assert tracker.work == 42
        assert tracker.depth == 3

    def test_tracker_cleared_after_exit(self):
        with track():
            pass
        assert current_tracker() is None

    def test_nested_tracks_fold_into_outer(self):
        with track() as outer:
            record(1, 0)
            with track() as inner:
                record(10, 2, category="sort")
            record(2, 0)
        assert inner.work == 10
        assert outer.work == 13
        assert outer.depth == 2
        assert outer.by_category["sort"].work == 10

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0, max_value=1e3),
            ),
            max_size=30,
        )
    )
    def test_totals_are_sums(self, records):
        with track() as tracker:
            for work, depth in records:
                record(work, depth)
        assert tracker.work == pytest.approx(sum(w for w, _ in records))
        assert tracker.depth == pytest.approx(sum(d for _, d in records))
