"""Tests for filter/pack (repro.prims.compact)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.prims import filter_array, pack, pack_index
from repro.runtime import track


class TestPack:
    def test_example(self):
        out = pack(np.array([10, 20, 30]), np.array([True, False, True]))
        assert out.tolist() == [10, 30]

    def test_empty(self):
        assert len(pack(np.array([]), np.array([], dtype=bool))) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pack(np.array([1, 2]), np.array([True]))

    @given(
        npst.arrays(np.int64, st.integers(0, 100), elements=st.integers(-100, 100)),
        st.data(),
    )
    def test_matches_comprehension_and_preserves_order(self, values, data):
        flags = data.draw(
            npst.arrays(np.bool_, len(values), elements=st.booleans())
        )
        expected = [v for v, f in zip(values.tolist(), flags.tolist()) if f]
        assert pack(values, flags).tolist() == expected

    def test_records_work(self):
        with track() as tracker:
            pack(np.arange(64), np.arange(64) % 2 == 0)
        assert tracker.work == 64
        assert tracker.by_category["filter"].work == 64


class TestPackIndex:
    def test_example(self):
        assert pack_index(np.array([False, True, True, False])).tolist() == [1, 2]

    def test_all_false(self):
        assert len(pack_index(np.zeros(5, dtype=bool))) == 0


class TestFilterArray:
    def test_vectorised_predicate(self):
        out = filter_array(np.arange(10), lambda xs: xs % 3 == 0)
        assert out.tolist() == [0, 3, 6, 9]

    def test_bad_predicate_shape(self):
        with pytest.raises(ValueError):
            filter_array(np.arange(4), lambda xs: np.array([True]))
