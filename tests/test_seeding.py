"""Tests for seed selection (repro.core.seeding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import arbitrary_seed, best_seed_by_sampling, random_seeds
from repro.graph import from_edge_list


class TestArbitrarySeed:
    def test_lands_in_largest_component(self):
        graph = from_edge_list([(0, 1), (2, 3), (3, 4), (4, 5), (2, 5)], num_vertices=6)
        for seed in range(5):
            vertex = arbitrary_seed(graph, rng=seed)
            assert vertex in {2, 3, 4, 5}

    def test_deterministic_by_rng(self, planted):
        assert arbitrary_seed(planted, rng=3) == arbitrary_seed(planted, rng=3)


class TestRandomSeeds:
    def test_count_and_degree_filter(self):
        graph = from_edge_list([(0, 1), (1, 2)], num_vertices=5)
        seeds = random_seeds(graph, 10, rng=0)
        assert len(seeds) == 10
        assert set(seeds.tolist()) <= {0, 1, 2}

    def test_min_degree(self):
        graph = from_edge_list([(0, 1), (1, 2)], num_vertices=4)
        seeds = random_seeds(graph, 5, rng=0, min_degree=2)
        assert set(seeds.tolist()) == {1}

    def test_no_eligible_vertices(self):
        graph = from_edge_list([], num_vertices=3)
        with pytest.raises(ValueError):
            random_seeds(graph, 2, min_degree=1)

    def test_without_replacement_when_possible(self, planted):
        seeds = random_seeds(planted, 50, rng=1)
        assert len(np.unique(seeds)) == 50


class TestBestSeedBySampling:
    def test_returns_good_seed(self, planted):
        seed, phi = best_seed_by_sampling(planted, num_candidates=10, rng=0)
        assert 0 <= seed < planted.num_vertices
        assert 0.0 < phi <= 1.0
        # With ten candidates on a strongly clustered graph the best phi is
        # far below the random-cut baseline.
        assert phi < 0.5

    def test_is_minimum_over_its_candidates(self, planted):
        # Replaying the same rng stream must reproduce the candidate set,
        # and the returned phi is the minimum over those candidates.
        from repro.core import PRNibbleParams, pr_nibble, sweep_cut

        seed, phi = best_seed_by_sampling(planted, num_candidates=8, rng=2)
        candidates = random_seeds(planted, 8, rng=np.random.default_rng(2))
        params = PRNibbleParams(alpha=0.05, eps=1e-4)
        best = min(
            sweep_cut(planted, pr_nibble(planted, int(c), params).vector).best_conductance
            for c in candidates
        )
        assert int(seed) in candidates.tolist()
        assert phi == pytest.approx(best)
