"""Tests for Nibble (repro.core.nibble)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NibbleParams, nibble, nibble_parallel, nibble_sequential, sweep_cut
from repro.graph import star_graph
from repro.core.result import vector_items


def _as_dict(result):
    keys, values = vector_items(result.vector)
    return dict(zip(keys.tolist(), values.tolist()))


class TestParams:
    def test_defaults(self):
        params = NibbleParams()
        assert params.max_iterations == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            NibbleParams(max_iterations=0)
        with pytest.raises(ValueError):
            NibbleParams(eps=0.0)
        with pytest.raises(ValueError):
            NibbleParams(eps=1.5)


class TestDynamics:
    def test_one_iteration_lazy_walk_step(self, small_cycle):
        # After one step from vertex 0 on a cycle: 1/2 stays, 1/4 each side.
        params = NibbleParams(max_iterations=1, eps=1e-6)
        result = nibble_sequential(small_cycle, 0, params)
        masses = _as_dict(result)
        assert masses[0] == pytest.approx(0.5)
        assert masses[1] == pytest.approx(0.25)
        assert masses[11] == pytest.approx(0.25)

    def test_mass_never_exceeds_one(self, planted):
        result = nibble(planted, 0, NibbleParams(15, 1e-5))
        keys, values = vector_items(result.vector)
        assert values.sum() <= 1.0 + 1e-9
        assert (values >= 0).all()

    def test_mass_conserved_while_no_truncation(self, small_cycle):
        # On a small cycle with tiny eps nothing is truncated: mass stays 1.
        result = nibble(small_cycle, 0, NibbleParams(5, 1e-9))
        _, values = vector_items(result.vector)
        assert values.sum() == pytest.approx(1.0)

    def test_truncation_loses_mass(self, planted):
        # A large eps truncates aggressively; total mass strictly drops.
        result = nibble(planted, 0, NibbleParams(10, 5e-3))
        _, values = vector_items(result.vector)
        assert values.sum() < 1.0

    def test_empty_frontier_returns_previous_vector(self, star_graph_fixture=None):
        # On a star from the hub with huge eps, mass at spokes drops below
        # eps*d quickly; the algorithm must return the *previous* vector
        # (Figure 3, line 15), which still sums to 1.
        graph = star_graph(50)
        result = nibble(graph, 0, NibbleParams(20, eps=0.5))
        _, values = vector_items(result.vector)
        assert values.sum() == pytest.approx(1.0)
        assert result.iterations < 20

    def test_respects_iteration_cap(self, planted):
        result = nibble(planted, 0, NibbleParams(3, 1e-9))
        assert result.iterations == 3

    def test_multi_seed(self, planted):
        result = nibble(planted, np.array([0, 1, 2]), NibbleParams(5, 1e-6))
        masses = _as_dict(result)
        assert sum(masses.values()) <= 1.0 + 1e-9
        assert result.support_size() > 3


class TestSequentialParallelEquivalence:
    @pytest.mark.parametrize("eps", [1e-4, 1e-5, 1e-6])
    def test_same_vector(self, planted, eps):
        params = NibbleParams(12, eps)
        seq = nibble_sequential(planted, 0, params)
        par = nibble_parallel(planted, 0, params)
        seq_masses = _as_dict(seq)
        par_masses = _as_dict(par)
        assert set(seq_masses) == set(par_masses)
        for key, value in seq_masses.items():
            assert par_masses[key] == pytest.approx(value, rel=1e-9, abs=1e-15)
        assert seq.iterations == par.iterations
        assert seq.pushes == par.pushes

    def test_same_cluster(self, planted, planted_community):
        params = NibbleParams(15, 1e-5)
        seq = sweep_cut(planted, nibble_sequential(planted, 0, params).vector)
        par = sweep_cut(planted, nibble_parallel(planted, 0, params).vector)
        assert np.array_equal(seq.best_cluster, par.best_cluster)


class TestLocality:
    def test_work_bounded_by_touched_not_graph(self, planted):
        # Support and touched edges stay tiny relative to the graph when
        # eps is large — the "local running time" property.
        result = nibble(planted, 0, NibbleParams(20, 1e-3))
        assert result.support_size() < planted.num_vertices / 4
        assert result.touched_edges < planted.total_volume / 4

    def test_frontier_sizes_recorded(self, planted):
        result = nibble_parallel(planted, 0, NibbleParams(5, 1e-6))
        sizes = result.extras["frontier_sizes"]
        assert len(sizes) == result.iterations
        assert sizes[0] == 1  # the seed


class TestRecovery:
    def test_finds_planted_community(self, planted, planted_community):
        result = nibble(planted, 0, NibbleParams(20, 1e-6))
        sweep = sweep_cut(planted, result.vector)
        found = set(sweep.best_cluster.tolist())
        truth = set(planted_community.tolist())
        overlap = len(found & truth) / len(found | truth)
        assert overlap > 0.8
        assert sweep.best_conductance < 0.3

    def test_seed_required(self, planted):
        with pytest.raises(ValueError):
            nibble(planted, np.array([], dtype=np.int64), NibbleParams())
