"""Tests for the benchmark harness utilities (repro.bench)."""

from __future__ import annotations

import pytest

from repro.bench import (
    ascii_series,
    batched_run,
    format_seconds,
    format_table,
    profiled_run,
    results_dir,
    write_csv,
)
from repro.runtime import record


class TestProfiledRun:
    def test_captures_value_cost_and_time(self):
        def work():
            record(1000, 10, category="scan")
            return 42

        run = profiled_run(work)
        assert run.value == 42
        assert run.tracker.work == 1000
        assert run.wall_seconds >= 0.0

    def test_simulated_times_decrease_with_cores(self):
        def work():
            record(10**8, 100, category="scan")

        run = profiled_run(work)
        assert run.simulated_time(40) < run.simulated_time(1)
        assert run.speedup(40) > 1.0


class TestCsvAndResultsDir:
    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path / "out"))
        path = results_dir()
        assert path.exists()
        assert path == tmp_path / "out"

    def test_write_csv(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        path = write_csv("demo", ["a", "b"], [[1, 2], [3, 4]])
        assert path.read_text().splitlines() == ["a,b", "1,2", "3,4"]


class TestBatchedRun:
    @pytest.fixture()
    def engine_and_jobs(self):
        from repro.engine import BatchEngine, DiffusionJob
        from repro.graph import barbell_graph

        graph = barbell_graph(8)
        jobs = [DiffusionJob.make(s, params={"eps": 1e-4}) for s in (0, 15)]
        return BatchEngine(graph), jobs

    def test_stats_only_run(self, engine_and_jobs):
        engine, jobs = engine_and_jobs
        run = batched_run(engine, jobs)
        assert run.value is None
        assert run.stats.jobs == 2 and run.stats.completed == 2
        assert run.workers == 1
        assert run.wall_seconds > 0.0
        assert run.jobs_per_second == pytest.approx(2 / run.wall_seconds)

    def test_reducer_value_alongside_stats(self, engine_and_jobs):
        from repro.engine import BestClusterReducer

        engine, jobs = engine_and_jobs
        run = batched_run(engine, jobs, BestClusterReducer())
        assert run.value is not None
        assert run.value.conductance == pytest.approx(run.value.sweep.best_conductance)
        assert run.stats.jobs == 2


class TestServeAndReportLifecycle:
    def test_view_closed_when_a_job_raises(self, monkeypatch):
        """Regression (invariant `resource-lifecycle`): a probe job that
        raises must still tear down the sharded view — the close used to
        be straight-line after the job loops, so an exception leaked the
        attached shard segments for the rest of the child's lifetime."""
        import repro.engine.executor as executor
        from repro.bench.memory import serve_and_report
        from repro.graph import barbell_graph
        from repro.graph.sharded import ShardedCSR, ShardedGraphView

        closes = []
        original_close = ShardedGraphView.close

        def spying_close(self):
            closes.append(True)
            return original_close(self)

        def exploding_run_job(*args, **kwargs):
            raise RuntimeError("job exploded mid-probe")

        monkeypatch.setattr(ShardedGraphView, "close", spying_close)
        monkeypatch.setattr(executor, "run_job", exploding_run_job)
        with ShardedCSR.create(barbell_graph(8), shards=2) as sharded:
            with pytest.raises(RuntimeError, match="job exploded"):
                serve_and_report(
                    "sharded",
                    sharded.handle(),
                    [object()],
                    max_resident=1,
                    halo_bytes=0,
                )
        assert closes, "view leaked: close() never ran on the failure path"


class TestFormatting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["x", 1.23456], ["longer", 2]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.235" in table  # 4 significant digits

    def test_format_seconds_ranges(self):
        assert format_seconds(0) == "0"
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(2.5).endswith("s")

    def test_ascii_series_renders(self):
        chart = ascii_series([1, 10, 100], [1.0, 0.1, 0.01], logx=True, logy=True)
        assert "*" in chart
        lines = chart.splitlines()
        assert len(lines) >= 10

    def test_ascii_series_rejects_mismatch(self):
        with pytest.raises(ValueError):
            ascii_series([1, 2], [1.0])

    def test_ascii_series_constant_values(self):
        chart = ascii_series([1, 2, 3], [5.0, 5.0, 5.0])
        assert "*" in chart
