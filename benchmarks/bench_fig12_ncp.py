"""Figure 12 — network community profile plots for the largest graphs.

The paper generates NCPs for its three billion-edge graphs (Twitter,
com-friendster, Yahoo) by running PR-Nibble from 10^5 random seeds with
varying alpha and eps.  The headline shape: conductance falls with cluster
size up to ~10-100 vertices and rises afterwards ("good communities are
relatively small"), while the Yahoo Web graph also shows good clusters at
much larger sizes.

We regenerate the profiles on the proxies at reduced seed count and verify
the dip shape on the social proxies.
"""

from __future__ import annotations

import numpy as np

from repro.bench import ascii_series, format_table, write_csv
from repro.core import log_binned, ncp_profile

from paper_params import FIGURE12_GRAPHS

NUM_SEEDS = 40
ALPHAS = (0.05, 0.01)
EPS_VALUES = (1e-4, 1e-5)


def _run_experiment(graphs):
    profiles = {}
    for name in FIGURE12_GRAPHS:
        profiles[name] = ncp_profile(
            graphs[name],
            num_seeds=NUM_SEEDS,
            alphas=ALPHAS,
            eps_values=EPS_VALUES,
            max_size=100_000,
            rng=7,
        )
    return profiles


def test_figure12_ncp(benchmark, graphs):
    profiles = benchmark.pedantic(lambda: _run_experiment(graphs), rounds=1, iterations=1)
    for name, profile in profiles.items():
        centers, minima = log_binned(profile)
        headers = ["cluster size (bin center)", "best conductance"]
        rows = list(zip(np.round(centers, 1).tolist(), minima.tolist()))
        print()
        print(format_table(headers, rows, title=f"Figure 12: NCP of {name} proxy"))
        print(ascii_series(centers.tolist(), minima.tolist(), logx=True, logy=True))
        write_csv(f"fig12_ncp_{name}", headers, rows)

    for name, profile in profiles.items():
        assert profile.runs == NUM_SEEDS * len(ALPHAS) * len(EPS_VALUES)
        sizes, phis = profile.series()
        assert len(sizes) > 10
        # The NCP dip: the best cluster in the 10-100 vertex range beats
        # the smallest clusters (the paper: "curves are downwards sloping
        # with increasing cluster size until around 10-100 vertices").
        dip_band = (sizes >= 10) & (sizes <= 100)
        tiny = sizes <= 3
        assert dip_band.any() and tiny.any()
        dip = phis[dip_band].min()
        assert dip < phis[tiny].min(), name

    # On the social proxies the curve turns upward again past the dip
    # ("good communities are relatively small")...
    for name in ("Twitter", "com-friendster"):
        sizes, phis = profiles[name].series()
        dip_band = (sizes >= 10) & (sizes <= 100)
        dip = phis[dip_band].min()
        dip_size = sizes[dip_band][np.argmin(phis[dip_band])]
        large = sizes >= 30 * dip_size
        assert large.any()
        assert phis[large].min() > dip, name
    # ...whereas the Yahoo Web graph "also seems to [have] many
    # low-conductance clusters at larger sizes (tens of thousands...)".
    sizes, phis = profiles["Yahoo"].series()
    big = sizes >= 1000
    assert big.any()
    assert phis[big].min() < 0.35
