"""Serving plane — interactive latency under a saturating bulk backlog.

The ROADMAP's serving scenario: one machine answers interactive
``local_cluster`` queries *while* a long NCP-style batch grinds through
the same worker pool.  Two ways to build that:

* **naive** — every interactive query constructs a fresh
  ``BatchEngine(backend="process")`` and calls ``run([job])``, paying pool
  start-up (and, under non-fork start methods, a full shared-memory graph
  export) per call, while the bulk batch runs on its own engine.
* **service** — one :class:`repro.serve.DiffusionService`: bulk jobs are
  ``submit_many``-ed at bulk priority, interactive queries drain ahead of
  the backlog, and every micro-batch reuses one long-lived pool and one
  shared graph export.
* **socket** — the same service fronted by
  :class:`repro.serve.DiffusionServer`, with 1 greedy bulk + 7
  interactive NDJSON clients on real TCP connections: what the wire and
  the round-robin fairness machinery add on top of the in-process
  service (acceptance: interactive p95 within 2x of in-process).

This benchmark measures interactive p50/p95 latency under all designs
(``spawn`` start method — the macOS/Windows default, where per-call pool
start-up is most punishing and the shared-memory graph plane is
exercised), asserts the served outcomes are bit-identical to serial, and
audits that the service ran *multiple* micro-batches over *one* export
with nothing leaked.  Results go to ``results/bench_serve.csv`` and
``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import threading
import time

import numpy as np

from repro.bench import format_seconds, format_table, write_csv
from repro.engine import BatchEngine, DiffusionJob, job_grid, run_job
from repro.graph.shared import SEGMENT_PREFIX
from repro.serve import DiffusionService

GRAPH = "soc-LJ"
WORKERS = 2
START_METHOD = "spawn"
MAX_BATCH = 4
BULK_SEEDS = 3
BULK_ALPHAS = (0.05, 0.01)
BULK_EPS = (1e-4, 1e-5)
INTERACTIVE_SEEDS = (11, 401, 4021, 977, 2203)
INTERACTIVE_PARAMS = {"alpha": 0.05, "eps": 1e-4}
SOCKET_CLIENTS = 8  # 1 greedy bulk connection + 7 interactive


def bulk_jobs(graph):
    from repro.core.seeding import random_seeds

    seeds = random_seeds(graph, BULK_SEEDS, rng=7)
    return list(job_grid(seeds, "pr-nibble", {"alpha": BULK_ALPHAS, "eps": BULK_EPS}))


def interactive_jobs(graph):
    return [
        DiffusionJob.make(seed % graph.num_vertices, params=dict(INTERACTIVE_PARAMS))
        for seed in INTERACTIVE_SEEDS
    ]


def shm_segments():
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX host
        return None
    return sorted(f for f in os.listdir(shm_dir) if f.startswith(SEGMENT_PREFIX))


def percentiles(latencies):
    array = np.asarray(latencies, dtype=np.float64)
    return {
        "p50": float(np.percentile(array, 50)),
        "p95": float(np.percentile(array, 95)),
        "mean": float(array.mean()),
        "max": float(array.max()),
    }


def run_naive(graph):
    """Per-call engines for interactive queries; bulk on its own engine."""
    background = BatchEngine(
        graph,
        backend="process",
        workers=WORKERS,
        start_method=START_METHOD,
        include_vectors=False,
    )
    bulk = bulk_jobs(graph)
    bulk_done = {}

    def grind():
        start = time.perf_counter()
        bulk_done["outcomes"] = background.run(bulk)
        bulk_done["wall"] = time.perf_counter() - start

    thread = threading.Thread(target=grind)
    wall_start = time.perf_counter()
    thread.start()
    latencies, outcomes = [], []
    for job in interactive_jobs(graph):
        start = time.perf_counter()
        # The naive pattern under scrutiny: a fresh engine (fresh pool,
        # fresh export) per interactive call.
        engine = BatchEngine(
            graph,
            backend="process",
            workers=WORKERS,
            start_method=START_METHOD,
            include_vectors=False,
        )
        outcomes.append(engine.run([job])[0])
        latencies.append(time.perf_counter() - start)
    thread.join()
    return {
        "latency": percentiles(latencies),
        "outcomes": outcomes,
        "bulk_outcomes": bulk_done["outcomes"],
        "bulk_wall": bulk_done["wall"],
        "wall": time.perf_counter() - wall_start,
    }


def run_service(graph):
    """One service: bulk at bulk priority, interactive jumping the backlog."""

    async def scenario():
        wall_start = time.perf_counter()
        async with DiffusionService(
            graph,
            workers=WORKERS,
            start_method=START_METHOD,
            include_vectors=False,
            max_batch=MAX_BATCH,
            max_linger=0.0,
        ) as service:
            bulk_futures = service.submit_many(bulk_jobs(graph), priority="bulk")
            latencies, outcomes = [], []
            segment_samples = []
            for job in interactive_jobs(graph):
                start = time.perf_counter()
                outcomes.append(await service.submit(job))
                latencies.append(time.perf_counter() - start)
                segment_samples.append(shm_segments())
            bulk_start = time.perf_counter()
            bulk_outcomes = await asyncio.gather(*bulk_futures)
            bulk_wall = time.perf_counter() - bulk_start
            return {
                "latency": percentiles(latencies),
                "outcomes": outcomes,
                "bulk_outcomes": bulk_outcomes,
                "bulk_wall": bulk_wall,
                "wall": time.perf_counter() - wall_start,
                "batches": service.stats.batches,
                "session_batches": service.session.batches,
                "segment_samples": segment_samples,
            }

    return asyncio.run(scenario())


def run_socket(graph):
    """Eight concurrent socket clients — one greedy bulk, seven
    interactive — against a :class:`DiffusionServer` fronting the same
    service configuration.  Measures what the fairness machinery is for:
    per-request interactive latency over the wire while one connection
    floods the server with the whole bulk backlog."""
    from repro.serve import DiffusionServer

    async def send(writer, payload):
        writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await writer.drain()

    async def recv(reader):
        return json.loads(await reader.readline())

    async def bulk_client(address, jobs):
        reader, writer = await asyncio.open_connection(*address)
        start = time.perf_counter()
        for job in jobs:
            await send(
                writer,
                {"v": 1, "seeds": list(job.seeds), "method": job.method,
                 "params": dict(job.params), "priority": "bulk"},
            )
        replies = [await recv(reader) for _ in jobs]
        writer.close()
        return replies, time.perf_counter() - start

    async def interactive_client(address, jobs):
        reader, writer = await asyncio.open_connection(*address)
        latencies, replies = [], []
        for job in jobs:
            start = time.perf_counter()
            await send(
                writer,
                {"v": 1, "seeds": list(job.seeds), "method": job.method,
                 "params": dict(job.params)},
            )
            replies.append(await recv(reader))
            latencies.append(time.perf_counter() - start)
        writer.close()
        return replies, latencies

    async def scenario():
        wall_start = time.perf_counter()
        async with DiffusionService(
            graph,
            workers=WORKERS,
            start_method=START_METHOD,
            include_vectors=False,
            max_batch=MAX_BATCH,
            max_linger=0.0,
        ) as service:
            async with DiffusionServer(service) as server:
                jobs = interactive_jobs(graph)
                results = await asyncio.gather(
                    bulk_client(server.address, bulk_jobs(graph)),
                    *(interactive_client(server.address, jobs)
                      for _ in range(SOCKET_CLIENTS - 1)),
                )
                admitted = dict(server.stats.by_priority)
        (bulk_replies, bulk_wall), *interactive = results
        latencies = [lat for _, client_lats in interactive for lat in client_lats]
        return {
            "latency": percentiles(latencies),
            "replies": [replies for replies, _ in interactive],
            "bulk_replies": bulk_replies,
            "bulk_wall": bulk_wall,
            "wall": time.perf_counter() - wall_start,
            "by_priority": admitted,
        }

    return asyncio.run(scenario())


def test_serve_interactive_latency(benchmark, graphs):
    graph = graphs[GRAPH]
    reference = [
        run_job(graph, job, index=index, include_vector=False)
        for index, job in enumerate(interactive_jobs(graph))
    ]

    def measure():
        return run_service(graph), run_naive(graph), run_socket(graph)

    service, naive, socket = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Determinism: the multiplexed, priority-scheduled service returns
    # exactly what one-job-at-a-time serial execution returns.
    for scenario in (service, naive):
        for expected, outcome in zip(reference, scenario["outcomes"]):
            assert np.array_equal(expected.cluster, outcome.cluster)
            assert outcome.conductance == expected.conductance
            assert outcome.pushes == expected.pushes
    # ...and so does every reply that crossed the wire (the transport
    # moves the same JobOutcome fields, bit for bit).
    for replies in socket["replies"]:
        for expected, reply in zip(reference, replies):
            assert reply["conductance"] == expected.conductance
            assert reply["pushes"] == expected.pushes
            assert reply["size"] == expected.size
    assert socket["by_priority"].get("bulk") == len(socket["bulk_replies"])

    # One pool, one export, many batches: the service ran several
    # micro-batches while the set of shared-memory segments never changed
    # (a single offsets/neighbors pair), and nothing leaked afterwards.
    assert service["batches"] >= 2
    assert service["session_batches"] == service["batches"]
    samples = [s for s in service["segment_samples"] if s is not None]
    if samples:
        assert all(len(sample) == 2 for sample in samples)
        assert len({tuple(sample) for sample in samples}) == 1
        assert shm_segments() == []

    headers = ["scenario", "p50", "p95", "mean", "max", "bulk wall", "total wall"]
    rows = [
        [
            name,
            format_seconds(scenario["latency"]["p50"]),
            format_seconds(scenario["latency"]["p95"]),
            format_seconds(scenario["latency"]["mean"]),
            format_seconds(scenario["latency"]["max"]),
            format_seconds(scenario["bulk_wall"]),
            format_seconds(scenario["wall"]),
        ]
        for name, scenario in (
            ("service", service), ("naive", naive), ("socket", socket)
        )
    ]
    bulk_count = len(service["bulk_outcomes"])
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Interactive latency under load: {GRAPH} proxy, "
            f"{len(INTERACTIVE_SEEDS)} interactive queries vs {bulk_count}-job "
            f"bulk backlog, {WORKERS} workers, {START_METHOD} start method",
        )
    )
    write_csv(
        "bench_serve",
        ["scenario", "p50", "p95", "mean", "max", "bulk_wall_seconds", "wall_seconds"],
        [
            [
                name,
                scenario["latency"]["p50"],
                scenario["latency"]["p95"],
                scenario["latency"]["mean"],
                scenario["latency"]["max"],
                scenario["bulk_wall"],
                scenario["wall"],
            ]
            for name, scenario in (
                ("service", service), ("naive", naive), ("socket", socket)
            )
        ],
    )
    socket_p95_vs_service = socket["latency"]["p95"] / service["latency"]["p95"]
    summary = {
        "graph": GRAPH,
        "workers": WORKERS,
        "start_method": START_METHOD,
        "max_batch": MAX_BATCH,
        "interactive_queries": len(INTERACTIVE_SEEDS),
        "bulk_jobs": bulk_count,
        "socket_clients": SOCKET_CLIENTS,
        "service": {k: service[k] for k in ("latency", "bulk_wall", "wall", "batches")},
        "naive": {k: naive[k] for k in ("latency", "bulk_wall", "wall")},
        "socket": {k: socket[k] for k in ("latency", "bulk_wall", "wall")},
        "p50_speedup_vs_naive": naive["latency"]["p50"] / service["latency"]["p50"],
        "p95_speedup_vs_naive": naive["latency"]["p95"] / service["latency"]["p95"],
        "socket_p95_vs_service": socket_p95_vs_service,
    }
    pathlib.Path("BENCH_serve.json").write_text(json.dumps(summary, indent=2))
    print(json.dumps(summary, indent=2))

    # The acceptance criterion: multiplexing onto one long-lived pool must
    # beat paying pool start-up per interactive call while the same bulk
    # backlog runs.  The margin is the whole pool spin-up (~seconds under
    # spawn), so this is robust even on noisy CI hosts.
    assert service["latency"]["p50"] < naive["latency"]["p50"]
    # And the wire must be cheap: with 1 bulk + 7 interactive socket
    # clients, interactive p95 over TCP stays within 2x of the in-process
    # service.  At smoke scale jobs are sub-millisecond and framing
    # overhead dominates the ratio, so the bound only binds at full scale.
    if not os.environ.get("REPRO_BENCH_SMOKE"):
        assert socket_p95_vs_service < 2.0, socket_p95_vs_service
