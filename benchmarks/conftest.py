"""Shared fixtures for the benchmark suite.

Each module under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Parameter settings live in
:mod:`paper_params`.  Heavy experiment drivers run once via
``benchmark.pedantic(rounds=1)``; results are printed as paper-style tables
(visible with ``pytest -s`` or in captured output) and written as CSV under
``results/``.
"""

from __future__ import annotations

import pytest

from repro.graph import load_proxy, proxy_names

from paper_params import LARGEST_GRAPH


@pytest.fixture(scope="session")
def graphs():
    """All ten Table-2 proxies, loaded once per session."""
    return {name: load_proxy(name) for name in proxy_names()}


@pytest.fixture(scope="session")
def largest(graphs):
    return graphs[LARGEST_GRAPH]
