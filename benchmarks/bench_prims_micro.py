"""Micro-benchmarks of the parallel primitives (PBBS analogues).

Not a paper artifact per se, but the substrate cost model rests on these
primitives being linear-work in practice; the timings here let a user
sanity-check the constants on their host.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.prims import (
    IntFloatHashTable,
    comparison_sort,
    integer_sort,
    pack,
    prefix_sum,
)

N = 1_000_000


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return {
        "floats": rng.random(N),
        "ints": rng.integers(0, N, size=N),
        "flags": rng.random(N) < 0.5,
        "keys": rng.integers(0, N // 4, size=N),
    }


def test_prefix_sum_throughput(benchmark, data):
    result = benchmark(lambda: prefix_sum(data["floats"]))
    assert len(result) == N


def test_pack_throughput(benchmark, data):
    result = benchmark(lambda: pack(data["ints"], data["flags"]))
    assert 0 < len(result) < N


def test_comparison_sort_throughput(benchmark, data):
    result = benchmark(lambda: comparison_sort(data["floats"]))
    assert len(result) == N


def test_integer_sort_throughput(benchmark, data):
    result = benchmark(lambda: integer_sort(data["ints"], max_key=N))
    assert len(result) == N


def test_hashtable_accumulate_throughput(benchmark, data):
    def build():
        table = IntFloatHashTable(capacity_hint=N // 4)
        table.accumulate(data["keys"], 1.0)
        return table

    table = benchmark(build)
    assert len(table) > 0


def test_hashtable_lookup_throughput(benchmark, data):
    table = IntFloatHashTable(capacity_hint=N // 4)
    table.accumulate(data["keys"], 1.0)
    values = benchmark(lambda: table.lookup(data["keys"]))
    assert values.min() >= 1.0
