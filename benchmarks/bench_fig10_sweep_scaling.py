"""Figure 10 — sweep cut running time vs core count (parallel vs sequential).

The paper runs Nibble on Yahoo (T=20, eps=1e-9; 1.3M-vertex, 566M-volume
cluster) and plots, log-log, the running time of the parallel and
sequential sweep cuts against core count: the parallel implementation is
slower on one thread (it scans the edges several times) but scales almost
linearly and overtakes the sequential one at about 4 threads.

We regenerate the two curves from measured work-depth profiles through the
machine model; the sequential profile is flat by construction (its work is
recorded under the no-speedup "sequential" category).
"""

from __future__ import annotations

from repro.bench import ascii_series, format_table, profiled_run, write_csv
from repro.core import nibble_parallel, sweep_cut_parallel, sweep_cut_sequential
from repro.runtime import PAPER_MACHINE

from paper_params import CORE_COUNTS, TABLE3_NIBBLE, seed_for


def _run_experiment(largest):
    seed = seed_for(largest)
    diffusion = nibble_parallel(largest, seed, TABLE3_NIBBLE)
    parallel = profiled_run(lambda: sweep_cut_parallel(largest, diffusion.vector))
    sequential = profiled_run(lambda: sweep_cut_sequential(largest, diffusion.vector))
    rows = []
    for cores in CORE_COUNTS:
        rows.append(
            [
                cores,
                PAPER_MACHINE.simulated_time_on_cores(parallel.tracker, cores),
                PAPER_MACHINE.simulated_time_on_cores(sequential.tracker, cores),
            ]
        )
    extras = {
        "cluster_size": parallel.value.num_candidates,
        "cluster_volume": int(parallel.value.volumes[-1]),
        "parallel_wall": parallel.wall_seconds,
        "sequential_wall": sequential.wall_seconds,
        "speedup_at_40": parallel.speedup(40),
    }
    return rows, extras


def test_figure10_sweep_scaling(benchmark, largest):
    rows, extras = benchmark.pedantic(lambda: _run_experiment(largest), rounds=1, iterations=1)
    headers = ["cores", "parallel sweep (s)", "sequential sweep (s)"]
    print()
    print(
        format_table(
            headers,
            rows,
            title=(
                "Figure 10: sweep on Nibble output of Yahoo proxy "
                f"(|S|={extras['cluster_size']}, vol={extras['cluster_volume']})"
            ),
        )
    )
    print(
        ascii_series(
            [row[0] for row in rows],
            [row[1] for row in rows],
            logx=True,
            logy=True,
        )
    )
    write_csv("fig10_sweep_scaling", headers, rows)

    parallel_times = [row[1] for row in rows]
    sequential_times = [row[2] for row in rows]
    # Parallel is slower on one core ("due to overheads of the parallel
    # algorithm"), the sequential line flattens out (its one parallel-
    # friendly component, the sparse-set scan, is a small share), and the
    # curves cross by a small core count (the paper: 4 or more threads).
    assert parallel_times[0] > sequential_times[0]
    assert max(sequential_times) / min(sequential_times) < 1.5
    assert max(sequential_times[3:]) / min(sequential_times[3:]) < 1.05
    crossover = next(
        (row[0] for row in rows if row[1] < row[2]),
        None,
    )
    assert crossover is not None and crossover <= 16, f"crossover at {crossover}"
    # Near-linear scaling: the paper reports 23-28x at 40 cores.
    assert 10.0 <= extras["speedup_at_40"] <= 40.0
