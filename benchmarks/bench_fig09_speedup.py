"""Figure 9 — self-relative speedup vs core count for the four algorithms.

The paper's Figure 9 plots speedup against core count (hyper-threading at
the top point) for eight graphs: Nibble, PR-Nibble and HK-PR reach 9-35x
on 40 cores; rand-HK-PR exceeds 40x because the walks are embarrassingly
parallel.  We regenerate the curves from the measured work-depth profile
of each run through the paper-machine model (DESIGN.md substitution).
"""

from __future__ import annotations

from repro.bench import format_table, profiled_run, write_csv
from repro.core import (
    hk_pr_parallel,
    nibble_parallel,
    pr_nibble_parallel,
    rand_hk_pr_parallel,
)
from repro.runtime import PAPER_MACHINE

from paper_params import (
    CORE_COUNTS,
    FIGURE9_GRAPHS,
    TABLE3_HK_PR,
    TABLE3_NIBBLE,
    TABLE3_PR_NIBBLE,
    TABLE3_RAND_HK_PR,
    seed_for,
)

ALGORITHMS = [
    ("Nibble", lambda g, s: nibble_parallel(g, s, TABLE3_NIBBLE)),
    ("PR-Nibble", lambda g, s: pr_nibble_parallel(g, s, TABLE3_PR_NIBBLE)),
    ("HK-PR", lambda g, s: hk_pr_parallel(g, s, TABLE3_HK_PR)),
    ("rand-HK-PR", lambda g, s: rand_hk_pr_parallel(g, s, TABLE3_RAND_HK_PR, rng=0)),
]


def _run_experiment(graphs):
    rows = []
    for name in FIGURE9_GRAPHS:
        graph = graphs[name]
        seed = seed_for(graph)
        for label, fn in ALGORITHMS:
            run = profiled_run(lambda fn=fn, g=graph, s=seed: fn(g, s))
            curve = PAPER_MACHINE.speedup_curve(run.tracker, CORE_COUNTS)
            rows.append([name, label, *(round(s, 2) for s in curve)])
    return rows


def test_figure9_speedup_curves(benchmark, graphs):
    rows = benchmark.pedantic(lambda: _run_experiment(graphs), rounds=1, iterations=1)
    headers = ["graph", "algorithm", *(f"{c}c" for c in CORE_COUNTS)]
    print()
    print(
        format_table(
            headers,
            rows,
            title="Figure 9: self-relative speedup vs cores (40c uses 80 hyper-threads)",
        )
    )
    write_csv("fig09_speedup", headers, rows)

    by_key = {(row[0], row[1]): row[2:] for row in rows}
    for (name, label), curve in by_key.items():
        # Self-relative: 1.0 at one core, monotone non-decreasing.
        assert abs(curve[0] - 1.0) < 1e-6
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:])), (name, label)

    # The paper's bands at 40 cores: deterministic diffusions 9-35x...
    for name in FIGURE9_GRAPHS:
        for label in ("Nibble", "PR-Nibble", "HK-PR"):
            at40 = by_key[(name, label)][-1]
            assert 2.0 <= at40 <= 40.0, f"{name}/{label}: {at40}"
        # ...and rand-HK-PR clearly above all of them (the paper reports
        # >40x thanks to hyper-threading; our model's SMT gain is slightly
        # more conservative, landing just below).
        rand_at40 = by_key[(name, "rand-HK-PR")][-1]
        assert rand_at40 > 30.0, f"{name}/rand-HK-PR: {rand_at40}"
        deterministic_best = max(
            by_key[(name, label)][-1] for label in ("Nibble", "PR-Nibble", "HK-PR")
        )
        assert rand_at40 > deterministic_best, name
    assert max(by_key[(n, "rand-HK-PR")][-1] for n in FIGURE9_GRAPHS) > 37.0
