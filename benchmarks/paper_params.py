"""Paper experiment parameters, proxy-scaled, shared by all benchmarks.

The paper's settings (Table 3 caption): Nibble T=20 eps=1e-8; PR-Nibble
alpha=0.01 eps=1e-7; HK-PR t=10 N=20 eps=1e-7; rand-HK-PR t=10 K=10 N=1e8 —
on graphs of 10^9..10^10 edges.  Our proxies are ~10^3x smaller and eps
bounds a per-degree residual, so eps (and the walk count) scale accordingly
to touch a comparable *fraction* of each graph ("at least tens of thousands
of vertices", the paper's calibration).
"""

from __future__ import annotations

import numpy as np

from repro.core import HKPRParams, NibbleParams, PRNibbleParams, RandHKPRParams
from repro.graph import proxy_names

TABLE3_NIBBLE = NibbleParams(max_iterations=20, eps=1e-7)
TABLE3_PR_NIBBLE = PRNibbleParams(alpha=0.01, eps=3e-6)
TABLE3_HK_PR = HKPRParams(t=10.0, taylor_degree=20, eps=1e-4)
TABLE3_RAND_HK_PR = RandHKPRParams(t=10.0, max_walk_length=10, num_walks=100_000)

#: Figure 4 / Table 1 setting.  eps sits safely *above* the saturation
#: point of the proxies: once a diffusion touches essentially the whole
#: (small) proxy graph, the optimized rule's more aggressive spreading can
#: invert the paper's push-count ordering — a finite-size artifact the
#: paper's billion-edge graphs never approach.
FIG4_PR_NIBBLE = PRNibbleParams(alpha=0.01, eps=1e-5)

#: The seven real-world graphs of the paper's Table 1.
TABLE1_GRAPHS = [
    "soc-LJ",
    "cit-Patents",
    "com-LJ",
    "com-Orkut",
    "Twitter",
    "com-friendster",
    "Yahoo",
]

#: The eight graphs of the paper's Figure 9 (meshes excluded: the paper
#: notes they terminate too quickly to benefit from parallelism).
FIGURE9_GRAPHS = [name for name in proxy_names() if name not in ("nlpkkt240", "3D-grid")]

#: The paper's Figure 9/10 x-axis ("on 40 cores, 80 hyper-threads are used").
CORE_COUNTS = [1, 2, 4, 8, 16, 24, 32, 40]

#: The three billion-edge graphs of Figure 12.
FIGURE12_GRAPHS = ["Twitter", "com-friendster", "Yahoo"]

#: The largest graph, used by Figures 8, 10 and 11.
LARGEST_GRAPH = "Yahoo"


def seed_for(graph) -> int:
    """Deterministic high-degree seed inside the giant component.

    The paper uses "a single arbitrary vertex in the largest component";
    the maximum-degree vertex is a deterministic choice that guarantees
    enough diffusion work to measure.
    """
    return int(np.argmax(graph.degrees()))
