"""Table 3 — running times of all algorithms + sweep on all ten graphs.

The paper's Table 3 reports T_1 (single-thread) and T_40 (40 cores with
hyper-threading) for parallel Nibble / PR-Nibble / HK-PR / rand-HK-PR and
the sweep cut, plus the sequential implementations' times, on the ten
Table-2 graphs.

Our columns: simulated T_1 and T_40 on the paper machine (from the
measured work-depth profile of each run — see DESIGN.md's substitution
policy), the self-relative speedup, the wall-clock of the vectorised run
on this host, and the sequential implementation's simulated time (flat in
core count by construction).  Shapes to reproduce: solid T_1/T_40 ratios
on the social-network proxies, negligible ones on the meshes ("not enough
work to benefit from parallelism"), and sequential sweep beating parallel
sweep at one core.
"""

from __future__ import annotations

from repro.bench import format_table, profiled_run, write_csv
from repro.core import (
    hk_pr_parallel,
    hk_pr_sequential,
    nibble_parallel,
    nibble_sequential,
    pr_nibble_parallel,
    pr_nibble_sequential,
    rand_hk_pr_parallel,
    rand_hk_pr_sequential,
    sweep_cut_parallel,
    sweep_cut_sequential,
)
from repro.graph import proxy_names

from paper_params import (
    TABLE3_HK_PR,
    TABLE3_NIBBLE,
    TABLE3_PR_NIBBLE,
    TABLE3_RAND_HK_PR,
    seed_for,
)

#: (label, parallel runner, sequential runner) per Table-3 row group.
ALGORITHMS = [
    (
        "Nibble",
        lambda g, s: nibble_parallel(g, s, TABLE3_NIBBLE),
        lambda g, s: nibble_sequential(g, s, TABLE3_NIBBLE),
    ),
    (
        "PR-Nibble",
        lambda g, s: pr_nibble_parallel(g, s, TABLE3_PR_NIBBLE),
        lambda g, s: pr_nibble_sequential(g, s, TABLE3_PR_NIBBLE),
    ),
    (
        "HK-PR",
        lambda g, s: hk_pr_parallel(g, s, TABLE3_HK_PR),
        lambda g, s: hk_pr_sequential(g, s, TABLE3_HK_PR),
    ),
    (
        "rand-HK-PR",
        lambda g, s: rand_hk_pr_parallel(g, s, TABLE3_RAND_HK_PR, rng=0),
        lambda g, s: rand_hk_pr_sequential(g, s, TABLE3_RAND_HK_PR, rng=0),
    ),
]


def _run_experiment(graphs):
    rows = []
    for name in proxy_names():
        graph = graphs[name]
        seed = seed_for(graph)
        nibble_vector = None
        for label, parallel_fn, sequential_fn in ALGORITHMS:
            par = profiled_run(lambda fn=parallel_fn, g=graph, s=seed: fn(g, s))
            seq = profiled_run(lambda fn=sequential_fn, g=graph, s=seed: fn(g, s))
            if label == "Nibble":
                nibble_vector = par.value.vector
            rows.append(
                [
                    name,
                    label,
                    par.simulated_time(1),
                    par.simulated_time(40),
                    par.speedup(40),
                    par.wall_seconds,
                    seq.simulated_time(1),
                    seq.wall_seconds,
                ]
            )
        # The paper's sweep rows use the output of Nibble.
        par = profiled_run(lambda: sweep_cut_parallel(graph, nibble_vector))
        seq = profiled_run(lambda: sweep_cut_sequential(graph, nibble_vector))
        rows.append(
            [
                name,
                "Sweep",
                par.simulated_time(1),
                par.simulated_time(40),
                par.speedup(40),
                par.wall_seconds,
                seq.simulated_time(1),
                seq.wall_seconds,
            ]
        )
    return rows


def test_table3_running_times(benchmark, graphs):
    rows = benchmark.pedantic(lambda: _run_experiment(graphs), rounds=1, iterations=1)
    headers = [
        "graph",
        "algorithm",
        "par T1 (sim s)",
        "par T40 (sim s)",
        "T1/T40",
        "par wall (s)",
        "seq T1 (sim s)",
        "seq wall (s)",
    ]
    print()
    print(
        format_table(
            headers,
            rows,
            title="Table 3: running times (simulated paper machine + host wall-clock)",
        )
    )
    write_csv("table3_runtimes", headers, rows)

    by_key = {(row[0], row[1]): row for row in rows}
    assert len(rows) == 10 * 5

    # Diffusions on the social-network proxies parallelise well...
    for graph_name in ("soc-LJ", "com-LJ", "randLocal"):
        for algorithm in ("Nibble", "PR-Nibble", "HK-PR", "rand-HK-PR"):
            speedup = by_key[(graph_name, algorithm)][4]
            assert speedup > 3.0, f"{graph_name}/{algorithm}: {speedup:.1f}x"
    # ...and rand-HK-PR scales best (embarrassingly parallel walks).
    for graph_name in ("soc-LJ", "Twitter", "Yahoo"):
        rand_speedup = by_key[(graph_name, "rand-HK-PR")][4]
        assert rand_speedup > 30.0, f"{graph_name}: rand-HK-PR only {rand_speedup:.1f}x"

    # Mesh graphs terminate too quickly to benefit (the paper's nlpkkt240 /
    # 3D-grid observation): their Nibble speedup trails the social graphs'.
    mesh = min(by_key[("nlpkkt240", "Nibble")][4], by_key[("3D-grid", "Nibble")][4])
    social = by_key[("soc-LJ", "Nibble")][4]
    assert mesh < social

    # Parallel sweep does more work than sequential sweep at one core on
    # graphs with a large swept set.
    assert by_key[("soc-LJ", "Sweep")][2] > by_key[("soc-LJ", "Sweep")][6]
