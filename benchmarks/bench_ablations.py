"""Ablations — the design choices the paper discusses in its text.

1. **rand-HK-PR aggregation** (Section 3.5): the paper rejects naive
   fetch-and-add aggregation of walk destinations ("poor speed up since
   many random walks end up on the same vertex causing high memory
   contention") in favour of sort-based counting.  We compare both
   implementations' wall time and verify they produce identical vectors.
2. **beta-fraction frontier** (Section 3.3): processing only the top
   beta-fraction of eligible vertices trades extra iterations for fewer
   wasted pushes; the paper found it helps "for certain graphs, but not by
   much".
3. **Sparse-set backend**: dict-based (sequential unordered_map analogue)
   vs the batched hash table, on identical update streams — the
   data-structure choice behind the paper's T1 observation that the
   concurrent table beats STL's unordered_map even on one thread.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import format_table, profiled_run, write_csv
from repro.core import (
    PRNibbleParams,
    pr_nibble_parallel,
    rand_hk_pr_parallel,
)
from repro.prims import SparseDict, SparseVector
from repro.runtime import time_call

from paper_params import TABLE3_RAND_HK_PR, seed_for


class TestAggregationAblation:
    def test_sort_vs_fetch_add(self, benchmark, graphs):
        graph = graphs["soc-LJ"]
        seed = seed_for(graph)

        def run_both():
            by_sort, t_sort = time_call(
                lambda: rand_hk_pr_parallel(
                    graph, seed, TABLE3_RAND_HK_PR, rng=3, aggregation="sort"
                )
            )
            by_add, t_add = time_call(
                lambda: rand_hk_pr_parallel(
                    graph, seed, TABLE3_RAND_HK_PR, rng=3, aggregation="fetch_add"
                )
            )
            return by_sort, by_add, t_sort, t_add

        by_sort, by_add, t_sort, t_add = benchmark.pedantic(run_both, rounds=1, iterations=1)
        headers = ["aggregation", "wall (s)", "support"]
        rows = [
            ["sort (paper's)", t_sort, by_sort.support_size()],
            ["fetch_add (rejected)", t_add, by_add.support_size()],
        ]
        print()
        print(format_table(headers, rows, title="Ablation: rand-HK-PR aggregation"))
        write_csv("ablation_aggregation", headers, rows)
        # Same RNG stream => identical walk destinations => identical vector.
        assert by_sort.vector.to_dict() == pytest.approx(by_add.vector.to_dict())


class TestBetaAblation:
    def test_beta_sweep(self, benchmark, graphs):
        graph = graphs["com-Orkut"]
        seed = seed_for(graph)

        def run_sweep():
            rows = []
            for beta in (1.0, 0.5, 0.2):
                params = PRNibbleParams(alpha=0.01, eps=1e-5, beta=beta)
                run = profiled_run(lambda: pr_nibble_parallel(graph, seed, params))
                rows.append(
                    [beta, run.value.pushes, run.value.iterations, run.simulated_time(40)]
                )
            return rows

        rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
        headers = ["beta", "pushes", "iterations", "T40 (sim s)"]
        print()
        print(format_table(headers, rows, title="Ablation: beta-fraction PR-Nibble frontier"))
        write_csv("ablation_beta", headers, rows)
        # The beta knob "trades off between additional work and
        # parallelism": a smaller beta pushes fewer, better-chosen vertices
        # per round (interpolating towards the sequential schedule, hence
        # weakly fewer pushes) but needs more rounds.
        iterations = [row[2] for row in rows]
        assert iterations == sorted(iterations)
        pushes = [row[1] for row in rows]
        assert pushes == sorted(pushes, reverse=True)


class TestSparseBackendAblation:
    def test_dict_vs_hashtable_batch_updates(self, benchmark):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 50_000, size=200_000)
        deltas = rng.random(200_000)

        def run_both():
            def dict_backend():
                p = SparseDict()
                for k, d in zip(keys.tolist(), deltas.tolist()):
                    p.add(k, d)
                return p

            def vector_backend():
                p = SparseVector()
                p.add(keys, deltas)
                return p

            dict_result, t_dict = time_call(dict_backend)
            vector_result, t_vector = time_call(vector_backend)
            return dict_result, vector_result, t_dict, t_vector

        dict_result, vector_result, t_dict, t_vector = benchmark.pedantic(
            run_both, rounds=1, iterations=1
        )
        headers = ["backend", "wall (s)", "entries"]
        rows = [
            ["SparseDict (unordered_map)", t_dict, dict_result.nnz],
            ["SparseVector (batched table)", t_vector, vector_result.nnz],
        ]
        print()
        print(format_table(headers, rows, title="Ablation: sparse-set backend, 200k updates"))
        write_csv("ablation_sparse_backend", headers, rows)
        assert dict_result.nnz == vector_result.nnz
        # The batched table wins by a wide margin on bulk streams (the
        # analogue of the paper's concurrent-table-beats-STL observation).
        assert t_vector < t_dict
