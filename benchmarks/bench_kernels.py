"""Compiled kernel plane — single-thread hot-loop throughput vs Python.

The kernel plane's acceptance number: the compiled PR-Nibble push loop
runs the *same* diffusion (bit-identical p/r vectors, pushes, sweep) at
>= 10x the Python reference's single-thread throughput.  Three timed
scenarios per available kernel, all sequential (``parallel=False`` where
the knob applies) so the comparison is loop implementation and nothing
else:

* **pr-nibble** — the queue-based push loop, the paper's workhorse, at a
  Table-3-style tight eps (the regime where the loop dominates and the
  per-call overhead of either implementation vanishes);
* **sweep** — the incremental sweep-cut membership scan over the
  diffusion's support;
* **rand-hk-pr** — the vectorised walk step loop (filter + gather).

Results: ``results/bench_kernels.csv`` + ``BENCH_kernels.json`` with the
headline ``pr_nibble_speedup`` per compiled kernel.  Outside smoke mode
the >= 10x criterion is asserted (at smoke scale the shrunken proxies
leave too few pushes for the ratio to stabilise).  Warm-up (JIT/compile)
is paid before any clock starts — the same steady-state rule the
executor's ``warmup_seconds`` accounting enforces.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.bench import format_seconds, format_table, write_csv
from repro.core import PRNibbleParams, RandHKPRParams, pr_nibble, rand_hk_pr, sweep_cut
from repro.core.result import vector_items
from repro.kernels import available_kernels, ensure_warm

GRAPH = "Twitter"  # largest-volume proxy: longest push queues
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

NUM_SEEDS = 2 if SMOKE else 8
PR_PARAMS = PRNibbleParams(alpha=0.01, eps=1e-4 if SMOKE else 3e-7)
WALK_PARAMS = RandHKPRParams(
    t=10.0, max_walk_length=10, num_walks=2_000 if SMOKE else 200_000
)
MIN_SPEEDUP = 10.0


def bench_seeds(graph):
    """High-degree seeds spread across the vertex range: long pushes, no
    degenerate single-vertex supports."""
    degrees = graph.degrees()
    order = np.argsort(-degrees)[: NUM_SEEDS * 50]
    return np.sort(order[:: max(1, len(order) // NUM_SEEDS)][:NUM_SEEDS])


def time_kernel(kernel, graph, seeds):
    """One timed pass per scenario; returns (seconds, checksums) maps."""
    ensure_warm(kernel)  # JIT/compile outside every clock
    seconds = {}
    checks = {}

    start = time.perf_counter()
    results = [
        pr_nibble(graph, int(s), PR_PARAMS, parallel=False, kernel=kernel)
        for s in seeds
    ]
    seconds["pr_nibble"] = time.perf_counter() - start
    checks["pushes"] = sum(r.pushes for r in results)
    checks["p_digest"] = [
        (int(keys[0]), float(values.sum()))
        for keys, values in (vector_items(r.vector) for r in results)
    ]

    start = time.perf_counter()
    sweeps = [
        sweep_cut(graph, r.vector, parallel=False, kernel=kernel) for r in results
    ]
    seconds["sweep"] = time.perf_counter() - start
    checks["sweep"] = [
        (int(s.volumes[-1]), int(s.cuts[-1]), s.best_index) for s in sweeps
    ]

    start = time.perf_counter()
    walks = rand_hk_pr(
        graph, int(seeds[0]), WALK_PARAMS, parallel=True, rng=7, kernel=kernel
    )
    seconds["rand_hk_pr"] = time.perf_counter() - start
    checks["walk"] = sorted(walks.vector.to_dict().items())
    return seconds, checks


def test_kernel_throughput(benchmark, graphs):
    graph = graphs[GRAPH]
    seeds = bench_seeds(graph)
    kernels = available_kernels()

    def measure():
        return {kernel: time_kernel(kernel, graph, seeds) for kernel in kernels}

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Differential gate first: a fast wrong kernel is not a result.
    _, reference = runs["python"]
    for kernel in kernels:
        _, checks = runs[kernel]
        assert checks == reference, f"kernel {kernel!r} diverged from python"

    pushes = reference["pushes"]

    headers = ["kernel", "pr-nibble", "pushes/s", "speedup", "sweep", "rand-hk-pr"]
    rows = []
    csv_rows = []
    py_seconds = runs["python"][0]
    speedups = {}
    for kernel in kernels:
        seconds = runs[kernel][0]
        speedups[kernel] = py_seconds["pr_nibble"] / seconds["pr_nibble"]
        rows.append(
            [
                kernel,
                format_seconds(seconds["pr_nibble"]),
                f"{pushes / seconds['pr_nibble']:.3g}",
                f"{speedups[kernel]:.1f}x",
                format_seconds(seconds["sweep"]),
                format_seconds(seconds["rand_hk_pr"]),
            ]
        )
        csv_rows.append(
            [
                kernel,
                seconds["pr_nibble"],
                pushes / seconds["pr_nibble"],
                speedups[kernel],
                seconds["sweep"],
                seconds["rand_hk_pr"],
            ]
        )
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Kernel throughput: {GRAPH} proxy, {len(seeds)} seeds, "
            f"alpha={PR_PARAMS.alpha} eps={PR_PARAMS.eps}, {pushes} pushes, "
            "sequential (single thread)",
        )
    )
    write_csv(
        "bench_kernels",
        [
            "kernel",
            "pr_nibble_seconds",
            "pushes_per_second",
            "pr_nibble_speedup",
            "sweep_seconds",
            "rand_hk_pr_seconds",
        ],
        csv_rows,
    )
    summary = {
        "graph": GRAPH,
        "seeds": len(seeds),
        "alpha": PR_PARAMS.alpha,
        "eps": PR_PARAMS.eps,
        "pushes": pushes,
        "smoke": SMOKE,
        "kernels": {
            kernel: {
                "pr_nibble_seconds": runs[kernel][0]["pr_nibble"],
                "pushes_per_second": pushes / runs[kernel][0]["pr_nibble"],
                "pr_nibble_speedup": speedups[kernel],
                "sweep_seconds": runs[kernel][0]["sweep"],
                "rand_hk_pr_seconds": runs[kernel][0]["rand_hk_pr"],
            }
            for kernel in kernels
        },
    }
    pathlib.Path("BENCH_kernels.json").write_text(json.dumps(summary, indent=2))
    print(json.dumps(summary, indent=2))

    # The acceptance criterion: >= 10x single-thread push throughput from
    # every compiled kernel, at full bench scale only (smoke's loose eps
    # leaves so few pushes that constant overheads dominate the ratio).
    compiled = [kernel for kernel in kernels if kernel != "python"]
    if not SMOKE:
        assert compiled, "no compiled kernel available to measure"
        for kernel in compiled:
            assert speedups[kernel] >= MIN_SPEEDUP, (
                f"{kernel} speedup {speedups[kernel]:.1f}x < {MIN_SPEEDUP}x "
                f"({py_seconds['pr_nibble']:.3f}s python vs "
                f"{runs[kernel][0]['pr_nibble']:.3f}s {kernel})"
            )
