"""Figure 11 — parallel sweep cut running time vs input-set volume.

The paper varies Nibble's parameters on Yahoo to produce input sets of
growing volume and shows the 40-core parallel sweep time "scales nearly
linearly, which is expected since the time is dominated by linear-work
operations (the only part that scales super-linearly is the initial sort,
which takes a small fraction of the total time)".

We sweep Nibble's eps on the Yahoo proxy and fit the log-log slope of
simulated 40-core sweep time against volume: it must be close to 1.
"""

from __future__ import annotations

import numpy as np

from repro.bench import ascii_series, format_table, profiled_run, write_csv
from repro.core import NibbleParams, nibble_parallel, sweep_cut_parallel

from paper_params import seed_for

EPS_SWEEP = [3e-5, 1e-5, 3e-6, 1e-6, 3e-7, 1e-7]


def _run_experiment(largest):
    seed = seed_for(largest)
    rows = []
    for eps in EPS_SWEEP:
        diffusion = nibble_parallel(largest, seed, NibbleParams(max_iterations=20, eps=eps))
        if diffusion.support_size() < 2:
            continue
        run = profiled_run(lambda: sweep_cut_parallel(largest, diffusion.vector))
        volume = int(run.value.volumes[-1])
        rows.append([eps, run.value.num_candidates, volume, run.simulated_time(40), run.wall_seconds])
    return rows


def test_figure11_sweep_vs_volume(benchmark, largest):
    rows = benchmark.pedantic(lambda: _run_experiment(largest), rounds=1, iterations=1)
    headers = ["nibble eps", "set size", "volume", "T40 (sim s)", "wall (s)"]
    print()
    print(format_table(headers, rows, title="Figure 11: parallel sweep time vs input volume"))
    volumes = np.asarray([row[2] for row in rows], dtype=np.float64)
    times = np.asarray([row[3] for row in rows], dtype=np.float64)
    print(ascii_series(volumes.tolist(), times.tolist(), logx=True, logy=True))
    write_csv("fig11_sweep_volume", headers, rows)

    assert len(rows) >= 4, "need several volumes to fit a slope"
    # Volumes must span at least one order of magnitude for the fit.
    assert volumes.max() / volumes.min() > 10.0
    # Larger volume, (weakly) more time.
    order = np.argsort(volumes)
    assert (np.diff(times[order]) > -1e-9).all()
    # Log-log slope ~ 1 (near-linear scaling).
    slope = np.polyfit(np.log(volumes), np.log(times), 1)[0]
    assert 0.8 <= slope <= 1.25, f"log-log slope {slope:.2f}"
