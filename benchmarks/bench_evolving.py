"""Evolving-graph plane — incremental PPR and cache survival under churn.

The workload models a social graph under skewed write traffic: the
Twitter proxy takes a 1%-edge-churn update batch (insert-heavy,
concentrated in one hot BFS neighborhood — real update streams are
localized, not uniform) while a warmed engine keeps serving
PR-Nibble queries whose seeds are spread over the whole graph.

Two headline numbers, both asserted at full scale:

* **incremental-vs-cold speedup** — maintaining the prior ``(p, r)``
  solutions through :func:`repro.core.pr_nibble_update` against cold
  ``pr_nibble_sequential`` re-runs on the new version.  Corrections are
  proportional to the delta's overlap with each support, so seeds far
  from the hot region are nearly free; the batch-level speedup must be
  >= 5x.
* **cache survival rate** — :func:`repro.cache.advance_version` re-keys
  entries whose profile provably avoids the delta region; under
  localized churn at least 50% of the warmed entries must survive (and
  replay as hits on the new version).

Correctness is asserted at every scale, smoke included: incremental
states satisfy the cold terminal condition ``|r(v)| < eps * d(v)``,
every surviving cache hit is bit-identical to a cold recompute on the
new version, and the sum of migration counters balances.  Set
``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to keep those asserts
but skip the speedup/survival floors — on the ~50x-shrunk smoke proxies
the hot neighborhood is a large fraction of the graph and the cold runs
are too short to time stably, so the full-scale floors do not transfer.
Results: ``results/bench_evolving.csv`` + ``BENCH_evolving.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.bench import format_seconds, format_table, write_csv
from repro.cache import ResultCache, advance_version
from repro.core import PRNibbleParams, pr_nibble_update
from repro.core.pr_nibble import pr_nibble_sequential
from repro.core.result import vector_items
from repro.core.seeding import random_seeds
from repro.engine import BatchEngine, DiffusionJob
from repro.graph import EvolvingGraph

GRAPH = "Twitter"
NUM_SEEDS = 24
PARAMS = PRNibbleParams(alpha=0.05, eps=1e-3)
CHURN_FRACTION = 0.01  # deletions + insertions, as a fraction of edges
DELETION_SHARE = 0.05  # social-graph churn is insert-heavy
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SPEEDUP_FLOOR = 5.0
SURVIVAL_FLOOR = 0.5


def hot_ball(graph, need_deletions, need_insertions):
    """The smallest BFS ball (from vertex 0) able to host the churn.

    Real update traffic is localized — a trending community churns while
    the rest of the graph idles — so the batch concentrates in one dense
    neighborhood: the ball grows until it holds ``need_deletions``
    internal edges and enough internal non-edges for the insertions.
    """
    from collections import deque

    members = [0]
    member_set = {0}
    internal = 0
    queue = deque(members)
    while queue:
        u = queue.popleft()
        for v in graph.neighbors_of(u).tolist():
            if v in member_set:
                continue
            internal += int(np.isin(graph.neighbors_of(v), np.array(members)).sum())
            member_set.add(v)
            members.append(v)
            queue.append(v)
            n = len(members)
            if internal >= need_deletions and (
                n * (n - 1) // 2 - internal >= need_insertions
            ):
                return members, member_set
    return members, member_set


def churn_batch(graph, rng):
    """A 1%-of-edges update batch concentrated in one hot neighborhood."""
    num_edges = len(graph.neighbors) // 2
    total = max(2, int(round(num_edges * CHURN_FRACTION)))
    need_deletions = max(1, int(round(total * DELETION_SHARE)))
    need_insertions = total - need_deletions
    members, member_set = hot_ball(graph, need_deletions, need_insertions)

    deletions = []
    for u in members:
        for v in graph.neighbors_of(u).tolist():
            if v > u and v in member_set:
                deletions.append((u, int(v)))
    deletions = deletions[:need_deletions]

    present = {tuple(sorted(edge)) for edge in deletions}
    pool = np.array(members)
    insertions = []
    while len(insertions) < need_insertions:
        u, v = (int(x) for x in rng.choice(pool, size=2))
        edge = (min(u, v), max(u, v))
        if u == v or edge in present or graph.has_edge(*edge):
            continue
        present.add(edge)
        insertions.append(edge)
    return insertions, deletions


def _assert_terminal(graph, result):
    keys, values = vector_items(result.extras["residual"])
    degrees = graph.degrees(keys)
    positive = degrees > 0
    assert (np.abs(values[positive]) < PARAMS.eps * degrees[positive]).all()


def _run_experiment(graph):
    rng = np.random.default_rng(17)
    chain = EvolvingGraph(graph)
    seeds = random_seeds(graph, NUM_SEEDS, rng=7)
    jobs = [
        DiffusionJob.make(int(seed), params={"alpha": PARAMS.alpha, "eps": PARAMS.eps})
        for seed in seeds
    ]

    # Warm pass: priors for the incremental path, entries for the cache.
    cache = ResultCache()
    warm_engine = BatchEngine(
        chain, cache=cache, include_vectors=True, graph_version=0
    )
    warm = warm_engine.run(jobs)
    priors = {
        int(seed): pr_nibble_sequential(graph, int(seed), PARAMS) for seed in seeds
    }

    insertions, deletions = churn_batch(graph, rng)
    version = chain.apply_updates(insertions=insertions, deletions=deletions)

    migration = advance_version(cache, version)
    replay_engine = BatchEngine(chain, cache=cache, include_vectors=True)
    replay = replay_engine.run(jobs)

    incremental_seconds = cold_seconds = float("inf")
    for _ in range(3):  # best-of-3: the incremental pass is sub-ms in total
        start = time.perf_counter()
        incremental = {
            seed: pr_nibble_update(version, prior, seed, params=PARAMS)
            for seed, prior in priors.items()
        }
        incremental_seconds = min(incremental_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        cold = {
            int(seed): pr_nibble_sequential(version.graph, int(seed), PARAMS)
            for seed in seeds
        }
        cold_seconds = min(cold_seconds, time.perf_counter() - start)

    return {
        "chain": chain,
        "version": version,
        "jobs": jobs,
        "warm": warm,
        "replay": replay,
        "migration": migration,
        "incremental": incremental,
        "cold": cold,
        "incremental_seconds": incremental_seconds,
        "cold_seconds": cold_seconds,
        "churn": (len(insertions), len(deletions)),
    }


def test_evolving_churn(benchmark, graphs):
    graph = graphs[GRAPH]
    run = benchmark.pedantic(lambda: _run_experiment(graph), rounds=1, iterations=1)

    version = run["version"]
    migration = run["migration"]
    speedup = run["cold_seconds"] / max(run["incremental_seconds"], 1e-12)
    survival = migration.survival_rate
    replay_hits = sum(outcome.cached for outcome in run["replay"])
    untouched = sum(
        1
        for result in run["incremental"].values()
        if result.extras["corrected_endpoints"] == 0
    )

    headers = ["measure", "value"]
    rows = [
        ["graph", f"{GRAPH} proxy ({graph.num_vertices} vertices)"],
        ["churn (+ins/-del)", f"+{run['churn'][0]}/-{run['churn'][1]}"],
        ["touched vertices", len(version.touched)],
        ["incremental wall", format_seconds(run["incremental_seconds"])],
        ["cold wall", format_seconds(run["cold_seconds"])],
        ["speedup", f"{speedup:.1f}x"],
        ["cache migration", migration.describe()],
        ["survival rate", f"{survival:.2f}"],
        ["replay hits", f"{replay_hits}/{NUM_SEEDS}"],
        ["untouched solutions", f"{untouched}/{NUM_SEEDS}"],
    ]
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Evolving plane: {GRAPH} proxy, "
            f"{CHURN_FRACTION:.0%}-edge churn in one hot neighborhood",
        )
    )
    write_csv(
        "bench_evolving",
        [
            "graph",
            "seeds",
            "incremental_seconds",
            "cold_seconds",
            "speedup",
            "survived",
            "invalidated",
            "skipped",
            "survival_rate",
            "replay_hits",
        ],
        [
            [
                GRAPH,
                NUM_SEEDS,
                run["incremental_seconds"],
                run["cold_seconds"],
                speedup,
                migration.survived,
                migration.invalidated,
                migration.skipped,
                survival,
                replay_hits,
            ]
        ],
    )
    summary = {
        "graph": GRAPH,
        "smoke": SMOKE,
        "seeds": NUM_SEEDS,
        "churn_fraction": CHURN_FRACTION,
        "deletion_share": DELETION_SHARE,
        "touched_vertices": len(version.touched),
        "incremental_seconds": run["incremental_seconds"],
        "cold_seconds": run["cold_seconds"],
        "incremental_vs_cold_speedup": speedup,
        "migration": {
            "examined": migration.examined,
            "survived": migration.survived,
            "invalidated": migration.invalidated,
            "skipped": migration.skipped,
        },
        "cache_survival_rate": survival,
        "replay_hits": replay_hits,
        "untouched_solutions": untouched,
    }
    pathlib.Path("BENCH_evolving.json").write_text(json.dumps(summary, indent=2))
    print(json.dumps(summary, indent=2))

    # Correctness, at every scale.  The migration counters must balance;
    # every incremental state satisfies the cold terminal condition; every
    # cache hit served on the new version is bit-identical to a cold
    # engine recompute there.
    assert migration.examined == NUM_SEEDS
    assert (
        migration.survived + migration.invalidated + migration.skipped
        == migration.examined
    )
    assert replay_hits == migration.survived
    for result in run["incremental"].values():
        _assert_terminal(version.graph, result)
    cold_engine = BatchEngine(version.graph, include_vectors=True)
    cold_outcomes = cold_engine.run(run["jobs"])
    for outcome, reference in zip(run["replay"], cold_outcomes):
        if not outcome.cached:
            continue
        assert outcome.support_size == reference.support_size
        assert np.array_equal(outcome.vector_keys, reference.vector_keys)
        assert np.array_equal(outcome.vector_values, reference.vector_values)

    # The headline floors describe the full-scale workload; the smoke
    # proxies shrink the graph ~50x but not the seed count, so the hot
    # region swallows most supports there.
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, f"incremental speedup {speedup:.1f}x < 5x"
        assert survival >= SURVIVAL_FLOOR, f"cache survival {survival:.2f} < 0.5"
