"""Batch engine — cross-query throughput scaling.

The paper's NCP experiment (Figure 12) issues 10^5 independent PR-Nibble
queries; this benchmark measures how fast the batch engine drains such a
stream as workers are added.  Unlike Figures 9-10 (which *simulate* the
paper's 40-core machine for intra-query parallelism), this is a real
wall-clock measurement of cross-query parallelism on the host: a
(seed x alpha x eps) job grid on the soc-LJ proxy, run through the serial
backend and through process pools of increasing size.

Expected shape on a multi-core host: jobs/s grows with workers until the
core count (or the pool's IPC overhead) saturates.  Every configuration
must produce the bit-identical NCP profile — the engine's determinism
contract — which is asserted, not just printed.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench import batched_run, format_seconds, format_table, write_csv
from repro.core.seeding import random_seeds
from repro.engine import BatchEngine, NCPReducer, job_grid

GRAPH = "soc-LJ"
NUM_SEEDS = 16
ALPHAS = (0.05, 0.01)
EPS_VALUES = (1e-4, 1e-5)


def _worker_counts() -> list[int]:
    cores = os.cpu_count() or 1
    counts = [1, 2, 4]
    return [w for w in counts if w <= max(2, cores)]


def _run_experiment(graph):
    seeds = random_seeds(graph, NUM_SEEDS, rng=3)
    grid = {"alpha": ALPHAS, "eps": EPS_VALUES}
    runs = {}
    jobs = list(job_grid(seeds, "pr-nibble", grid))
    serial = BatchEngine(graph, backend="serial", include_vectors=False)
    runs["serial"] = batched_run(serial, jobs, NCPReducer(graph.num_vertices))
    for workers in _worker_counts():
        engine = BatchEngine(
            graph, backend="process", workers=workers, include_vectors=False
        )
        runs[f"process-{workers}"] = batched_run(
            engine, jobs, NCPReducer(graph.num_vertices)
        )
    return runs


def test_batch_engine_scaling(benchmark, graphs):
    graph = graphs[GRAPH]
    runs = benchmark.pedantic(lambda: _run_experiment(graph), rounds=1, iterations=1)

    baseline = runs["serial"]
    headers = ["backend", "workers", "jobs", "wall", "jobs/s", "speedup"]
    rows = []
    for name, run in runs.items():
        rows.append(
            [
                name,
                run.workers,
                run.stats.jobs,
                format_seconds(run.wall_seconds),
                f"{run.jobs_per_second:.1f}",
                f"{baseline.wall_seconds / run.wall_seconds:.2f}x",
            ]
        )
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Batch engine throughput: {GRAPH} proxy, "
            f"{baseline.stats.jobs} PR-Nibble jobs, {os.cpu_count()} host cores",
        )
    )
    write_csv(
        "bench_batch_engine",
        ["backend", "workers", "jobs", "wall_seconds", "jobs_per_second"],
        [
            [name, run.workers, run.stats.jobs, run.wall_seconds, run.jobs_per_second]
            for name, run in runs.items()
        ],
    )

    expected_jobs = NUM_SEEDS * len(ALPHAS) * len(EPS_VALUES)
    assert baseline.stats.jobs == expected_jobs
    # Determinism contract: every backend and worker count produces the
    # bit-identical NCP profile.
    for name, run in runs.items():
        assert run.value.runs == baseline.value.runs, name
        assert np.array_equal(run.value.conductance, baseline.value.conductance), name
    # On a multi-core host the pool must actually scale throughput; on a
    # single core we only require that fan-out works and stays correct.
    # The CI smoke job (REPRO_BENCH_SMOKE=1) runs on graphs so small that
    # pool start-up dominates, so there the numbers are recorded for
    # trend tracking but not asserted.
    if (os.cpu_count() or 1) >= 2 and os.environ.get("REPRO_BENCH_SMOKE") != "1":
        best = max(run.jobs_per_second for name, run in runs.items() if name != "serial")
        assert best > 1.05 * baseline.jobs_per_second
