"""Scheduler plane — straggler tail of fifo vs pre-planned vs stealing.

The paper bounds PR-Nibble work by O(1/(eps*alpha)), so a mixed-eps NCP
grid contains jobs whose costs span ~3 orders of magnitude.  Count-based
(fifo) chunking lets one chunk collect the expensive corner of the grid
and straggle the whole batch.  The scheduler plane's answer evolved in
two steps, and this benchmark keeps both on the record:

* ``cost-chunks`` — the historical pre-planned packing
  (:func:`repro.engine.plan_chunks`): cost-balanced chunks dispatched
  longest-first.  Good when the estimates are right; one mis-estimated
  chunk still straggles, because the assignment is fixed up front.
* ``cost`` — work-stealing dispatch (:func:`repro.engine.plan_units`):
  fine-grained units ordered heaviest-first on a shared queue, workers
  pulling the next unit as they finish.  Placement reacts to *measured*
  progress, so an estimate error costs at most one unit of imbalance.

The comparison runs on exactly the straggler workload:

1. One serial pass measures every job's real wall time.
2. Each schedule's dispatch plan is replayed through a deterministic
   list-scheduling simulation (units assigned, in dispatch order, to the
   earliest-free of W workers) using the *measured* durations — giving
   exact makespan and per-worker idle with zero timing noise.
3. ``fifo`` and ``cost`` also run for real through the process backend
   (``cost-chunks`` is simulation-only: the executor now always steals),
   the outcomes are asserted bit-identical to serial, and the backend's
   :class:`~repro.engine.DispatchStats` (per-worker busy/idle/steals)
   plus the online cost-calibration snapshot land in the summary.

The straggler tail is reported as p95 and max worker idle time (the time
workers wait on the last unit).  Results go to
``results/bench_scheduler.csv`` and ``BENCH_scheduler.json``.  The
acceptance checks: stealing must not straggle worse than fifo at *any*
scale (fine granularity wins even where the shrunken smoke proxies make
the analytic estimates uninformative), and at full scale it must also
beat the pre-planned ``cost-chunks`` packing on makespan and idle p95.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.bench import batched_run, format_seconds, format_table, write_csv
from repro.core.seeding import random_seeds
from repro.engine import BatchEngine, plan_chunks, plan_units, run_job
from repro.engine.reducers import StatsReducer

GRAPH = "soc-LJ"
NUM_SEEDS = 10
ALPHAS = (0.05, 0.01)
EPS_VALUES = (1e-3, 1e-4, 1e-5, 1e-6)  # ~1000x cost spread end to end
WORKERS = 4
SCHEDULES_UNDER_TEST = ("fifo", "cost-chunks", "cost")
REAL_SCHEDULES = ("fifo", "cost")
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def mixed_eps_jobs(graph):
    from repro.engine import job_grid

    seeds = random_seeds(graph, NUM_SEEDS, rng=11)
    return list(job_grid(seeds, "pr-nibble", {"alpha": ALPHAS, "eps": EPS_VALUES}))


def plan_for(schedule, jobs):
    """The dispatch plan a schedule produces, as a list of (index, job) units."""
    if schedule == "cost-chunks":
        return plan_chunks(jobs, WORKERS, schedule="cost")
    return plan_units(jobs, WORKERS, schedule=schedule)


def simulate_schedule(units, durations, workers):
    """List-schedule ``units`` (in dispatch order) onto ``workers``.

    Returns (makespan, per-worker idle array).  This mirrors how the pool
    consumes ``imap_unordered`` input: each free worker takes the next
    undispatched unit — exactly the stealing loop — and a unit's run time
    is the sum of its jobs' measured durations.
    """
    free_at = np.zeros(workers, dtype=np.float64)
    for unit in units:
        cost = sum(durations[index] for index, _ in unit)
        worker = int(np.argmin(free_at))
        free_at[worker] += cost
    makespan = float(free_at.max())
    idle = makespan - free_at
    return makespan, idle


def test_scheduler_straggler_tail(benchmark, graphs):
    graph = graphs[GRAPH]
    jobs = mixed_eps_jobs(graph)

    def measure():
        # 1. measured per-job durations (serial, includes the sweep)
        durations = [
            run_job(graph, job, index=index, include_vector=False).wall_seconds
            for index, job in enumerate(jobs)
        ]
        # 2. simulated straggler tail per schedule
        simulated = {}
        for schedule in SCHEDULES_UNDER_TEST:
            units = plan_for(schedule, jobs)
            makespan, idle = simulate_schedule(units, durations, WORKERS)
            simulated[schedule] = {
                "units": len(units),
                "makespan": makespan,
                "idle_p95": float(np.percentile(idle, 95)),
                "idle_max": float(idle.max()),
                "idle_mean": float(idle.mean()),
            }
        # 3. real pool runs, asserted identical to serial
        serial = BatchEngine(graph, include_vectors=False).run(jobs)
        real = {}
        for schedule in REAL_SCHEDULES:
            engine = BatchEngine(
                graph,
                backend="process",
                workers=WORKERS,
                include_vectors=False,
                schedule=schedule,
            )
            real[schedule] = batched_run(engine, jobs, StatsReducer(engine=engine))
        return durations, simulated, real, serial

    durations, simulated, real, serial = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # Determinism: both scheduled pool runs saw every job (stats match the
    # serial pass), so dispatch changed placement, never results.
    for schedule, run in real.items():
        assert run.stats.jobs == len(jobs), schedule
        assert run.stats.total_pushes == sum(o.pushes for o in serial), schedule
    # The stealing run really stole: its workers pulled queue units beyond
    # their first, and the dispatch accounting saw every job.
    cost_dispatch = real["cost"].value.dispatch
    assert cost_dispatch is not None and cost_dispatch["jobs"] == len(jobs)
    assert cost_dispatch["steals"] > 0

    headers = ["schedule", "units", "sim makespan", "sim idle p95", "sim idle max", "real wall"]
    rows = [
        [
            schedule,
            simulated[schedule]["units"],
            format_seconds(simulated[schedule]["makespan"]),
            format_seconds(simulated[schedule]["idle_p95"]),
            format_seconds(simulated[schedule]["idle_max"]),
            format_seconds(real[schedule].wall_seconds) if schedule in real else "-",
        ]
        for schedule in SCHEDULES_UNDER_TEST
    ]
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Straggler tail: {GRAPH} proxy, {len(jobs)}-job mixed-eps grid "
            f"({NUM_SEEDS} seeds x {len(ALPHAS)} alphas x {len(EPS_VALUES)} eps), "
            f"{WORKERS} workers",
        )
    )
    write_csv(
        "bench_scheduler",
        ["schedule", "units", "sim_makespan", "sim_idle_p95", "sim_idle_max", "real_wall_seconds"],
        [
            [
                schedule,
                simulated[schedule]["units"],
                simulated[schedule]["makespan"],
                simulated[schedule]["idle_p95"],
                simulated[schedule]["idle_max"],
                real[schedule].wall_seconds if schedule in real else "",
            ]
            for schedule in SCHEDULES_UNDER_TEST
        ],
    )
    summary = {
        "graph": GRAPH,
        "jobs": len(jobs),
        "workers": WORKERS,
        "smoke": SMOKE,
        "total_job_seconds": float(sum(durations)),
        "simulated": simulated,
        "real_wall_seconds": {s: real[s].wall_seconds for s in real},
        "dispatch": {s: real[s].value.dispatch for s in real},
        "cost_calibration": real["cost"].value.cost_calibration,
        "tail_reduction_p95": simulated["fifo"]["idle_p95"]
        - simulated["cost"]["idle_p95"],
        "stealing_vs_chunks": {
            "makespan_improvement": simulated["cost-chunks"]["makespan"]
            - simulated["cost"]["makespan"],
            "idle_p95_improvement": simulated["cost-chunks"]["idle_p95"]
            - simulated["cost"]["idle_p95"],
        },
    }
    pathlib.Path("BENCH_scheduler.json").write_text(json.dumps(summary, indent=2))
    print(json.dumps(summary, indent=2))

    # Acceptance, part 1 — at EVERY scale, smoke included: stealing must
    # not straggle worse than fifo.  The pre-planned packing could not
    # promise this on the ~50x-shrunk CI proxies (an eps=1e-6 job costs
    # the same as an eps=1e-4 one there, so the analytic estimate cannot
    # rank jobs); fine-grained stealing wins on granularity alone, no
    # ranking needed.  Deterministic simulation on measured durations, so
    # this is noise-free.
    assert simulated["cost"]["idle_p95"] <= simulated["fifo"]["idle_p95"] * (1 + 1e-9)
    # Acceptance, part 2 — at full scale, stealing must also beat the
    # pre-planned cost-balanced packing it replaced, on both makespan and
    # idle tail (at smoke scale the two collapse towards each other: with
    # flat costs both degenerate to near-uniform unit streams).
    if not SMOKE:
        assert simulated["cost"]["makespan"] <= simulated["fifo"]["makespan"] * (1 + 1e-9)
        assert (
            simulated["cost"]["makespan"]
            <= simulated["cost-chunks"]["makespan"] * (1 + 1e-9)
        )
        assert (
            simulated["cost"]["idle_p95"]
            <= simulated["cost-chunks"]["idle_p95"] * (1 + 1e-9)
        )
