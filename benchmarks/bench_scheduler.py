"""Cost-aware scheduling — straggler tail of fifo vs cost-ordered chunks.

The paper bounds PR-Nibble work by O(1/(eps*alpha)), so a mixed-eps NCP
grid contains jobs whose costs span ~3 orders of magnitude.  Count-based
(fifo) chunking lets one chunk collect the expensive corner of the grid
and straggle the whole batch; the scheduler plane packs cost-balanced
chunks longest-first instead.

This benchmark quantifies the difference on exactly that workload:

1. One serial pass measures every job's real wall time.
2. Each schedule's chunk plan is replayed through a deterministic
   list-scheduling simulation (chunks assigned, in dispatch order, to the
   earliest-free of W workers) using the *measured* durations — giving
   exact makespan and per-worker idle with zero timing noise.
3. Both schedules also run for real through the process backend, and the
   outcomes are asserted bit-identical to serial.

The straggler tail is reported as p95 and max worker idle time (the time
workers wait on the last chunk).  Results go to
``results/bench_scheduler.csv`` and ``BENCH_scheduler.json``; the
acceptance check asserts the cost schedule's simulated tail is no worse
than fifo's.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.bench import batched_run, format_seconds, format_table, write_csv
from repro.core.seeding import random_seeds
from repro.engine import BatchEngine, plan_chunks, run_job
from repro.engine.reducers import StatsReducer

GRAPH = "soc-LJ"
NUM_SEEDS = 10
ALPHAS = (0.05, 0.01)
EPS_VALUES = (1e-3, 1e-4, 1e-5, 1e-6)  # ~1000x cost spread end to end
WORKERS = 4


def mixed_eps_jobs(graph):
    from repro.engine import job_grid

    seeds = random_seeds(graph, NUM_SEEDS, rng=11)
    return list(job_grid(seeds, "pr-nibble", {"alpha": ALPHAS, "eps": EPS_VALUES}))


def simulate_schedule(chunks, durations, workers):
    """List-schedule ``chunks`` (in dispatch order) onto ``workers``.

    Returns (makespan, per-worker idle array).  This mirrors how the pool
    consumes ``imap_unordered`` input: each free worker takes the next
    undispatched chunk; a chunk's run time is the sum of its jobs'
    measured durations.
    """
    free_at = np.zeros(workers, dtype=np.float64)
    for chunk in chunks:
        cost = sum(durations[index] for index, _ in chunk)
        worker = int(np.argmin(free_at))
        free_at[worker] += cost
    makespan = float(free_at.max())
    idle = makespan - free_at
    return makespan, idle


def test_scheduler_straggler_tail(benchmark, graphs):
    graph = graphs[GRAPH]
    jobs = mixed_eps_jobs(graph)

    def measure():
        # 1. measured per-job durations (serial, includes the sweep)
        durations = [
            run_job(graph, job, index=index, include_vector=False).wall_seconds
            for index, job in enumerate(jobs)
        ]
        # 2. simulated straggler tail per schedule
        simulated = {}
        for schedule in ("fifo", "cost"):
            chunks = plan_chunks(jobs, WORKERS, schedule=schedule)
            makespan, idle = simulate_schedule(chunks, durations, WORKERS)
            simulated[schedule] = {
                "chunks": len(chunks),
                "makespan": makespan,
                "idle_p95": float(np.percentile(idle, 95)),
                "idle_max": float(idle.max()),
                "idle_mean": float(idle.mean()),
            }
        # 3. real pool runs, asserted identical to serial
        serial = BatchEngine(graph, include_vectors=False).run(jobs)
        real = {}
        for schedule in ("fifo", "cost"):
            engine = BatchEngine(
                graph,
                backend="process",
                workers=WORKERS,
                include_vectors=False,
                schedule=schedule,
            )
            real[schedule] = batched_run(engine, jobs, StatsReducer())
        return durations, simulated, real, serial

    durations, simulated, real, serial = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # Determinism: both scheduled pool runs saw every job (stats match the
    # serial pass), so scheduling changed placement, never results.
    for schedule, run in real.items():
        assert run.stats.jobs == len(jobs), schedule
        assert run.stats.total_pushes == sum(o.pushes for o in serial), schedule

    headers = ["schedule", "chunks", "sim makespan", "sim idle p95", "sim idle max", "real wall"]
    rows = [
        [
            schedule,
            simulated[schedule]["chunks"],
            format_seconds(simulated[schedule]["makespan"]),
            format_seconds(simulated[schedule]["idle_p95"]),
            format_seconds(simulated[schedule]["idle_max"]),
            format_seconds(real[schedule].wall_seconds),
        ]
        for schedule in ("fifo", "cost")
    ]
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Straggler tail: {GRAPH} proxy, {len(jobs)}-job mixed-eps grid "
            f"({NUM_SEEDS} seeds x {len(ALPHAS)} alphas x {len(EPS_VALUES)} eps), "
            f"{WORKERS} workers",
        )
    )
    write_csv(
        "bench_scheduler",
        ["schedule", "chunks", "sim_makespan", "sim_idle_p95", "sim_idle_max", "real_wall_seconds"],
        [
            [
                schedule,
                simulated[schedule]["chunks"],
                simulated[schedule]["makespan"],
                simulated[schedule]["idle_p95"],
                simulated[schedule]["idle_max"],
                real[schedule].wall_seconds,
            ]
            for schedule in ("fifo", "cost")
        ],
    )
    summary = {
        "graph": GRAPH,
        "jobs": len(jobs),
        "workers": WORKERS,
        "total_job_seconds": float(sum(durations)),
        "simulated": simulated,
        "real_wall_seconds": {s: real[s].wall_seconds for s in real},
        "tail_reduction_p95": simulated["fifo"]["idle_p95"]
        - simulated["cost"]["idle_p95"],
    }
    pathlib.Path("BENCH_scheduler.json").write_text(json.dumps(summary, indent=2))
    print(json.dumps(summary, indent=2))

    # The acceptance criterion: cost-ordered chunking must not straggle
    # worse than fifo on the mixed-eps grid (deterministic simulation on
    # measured durations, so this is noise-free).  Skipped under
    # REPRO_BENCH_SMOKE: on the ~50x-shrunk CI proxies an eps=1e-6 job
    # costs the same as an eps=1e-4 one (push counts saturate at graph
    # size), so the analytic estimate cannot rank jobs there and the
    # figures are recorded for trend tracking only.
    if os.environ.get("REPRO_BENCH_SMOKE") != "1":
        assert simulated["cost"]["idle_p95"] <= simulated["fifo"]["idle_p95"] * (1 + 1e-9)
        assert simulated["cost"]["makespan"] <= simulated["fifo"]["makespan"] * (1 + 1e-9)
