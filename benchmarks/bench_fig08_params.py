"""Figure 8 — running time and conductance vs parameter settings.

The paper studies, on the Yahoo graph (its largest), how each algorithm's
parameters trade running time against cluster conductance (Figure 8a-h):

* Nibble:       more iterations T and/or smaller eps -> slower, better phi;
* PR-Nibble:    smaller eps -> slower, better phi;
* HK-PR:        larger N and/or smaller eps -> slower, better phi;
* rand-HK-PR:   larger K and/or more walks N -> slower, better phi.

We sweep the same parameter grids (proxy-scaled) on the Yahoo proxy from
the paper's best-seed-by-sampling starting vertex, reporting wall time and
sweep conductance per setting.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, write_csv
from repro.core import (
    HKPRParams,
    NibbleParams,
    PRNibbleParams,
    RandHKPRParams,
    best_seed_by_sampling,
    hk_pr_parallel,
    nibble_parallel,
    pr_nibble_parallel,
    rand_hk_pr_parallel,
    sweep_cut,
)
from repro.runtime import time_call

NIBBLE_GRID = [(T, eps) for T in (5, 10, 20) for eps in (1e-5, 1e-6, 1e-7)]
PR_NIBBLE_GRID = [1e-4, 3e-5, 1e-5, 3e-6]
HK_PR_GRID = [(N, eps) for N in (5, 10, 20) for eps in (1e-3, 1e-4, 1e-5)]
RAND_HK_PR_GRID = [(K, n) for K in (5, 10, 20) for n in (10_000, 100_000)]


@pytest.fixture(scope="module")
def sweep_seed(largest):
    # Figure 8's seed: "chosen by sampling ... vertices and picking the one
    # that gave the lowest-conductance clusters".
    seed, _ = best_seed_by_sampling(largest, num_candidates=30, rng=0)
    return seed


def _sweep(graph, seed, runs):
    rows = []
    for label, fn in runs:
        diffusion, seconds = time_call(fn)
        phi = sweep_cut(graph, diffusion.vector).best_conductance
        rows.append([label, seconds, phi, diffusion.support_size()])
    return rows


def test_fig8ab_nibble(benchmark, largest, sweep_seed):
    runs = [
        (
            f"T={T} eps={eps:g}",
            lambda T=T, eps=eps: nibble_parallel(largest, sweep_seed, NibbleParams(T, eps)),
        )
        for T, eps in NIBBLE_GRID
    ]
    rows = benchmark.pedantic(lambda: _sweep(largest, sweep_seed, runs), rounds=1, iterations=1)
    headers = ["setting", "time (s)", "conductance", "support"]
    print()
    print(format_table(headers, rows, title="Figure 8(a,b): Nibble on Yahoo proxy"))
    write_csv("fig08ab_nibble", headers, rows)
    # Larger T / smaller eps never reduces the support.
    by_setting = {row[0]: row for row in rows}
    assert by_setting["T=20 eps=1e-07"][3] >= by_setting["T=5 eps=1e-05"][3]
    assert by_setting["T=20 eps=1e-07"][2] <= by_setting["T=5 eps=1e-05"][2] + 1e-12


def test_fig8cd_pr_nibble(benchmark, largest, sweep_seed):
    runs = [
        (
            f"eps={eps:g}",
            lambda eps=eps: pr_nibble_parallel(
                largest, sweep_seed, PRNibbleParams(alpha=0.01, eps=eps)
            ),
        )
        for eps in PR_NIBBLE_GRID
    ]
    rows = benchmark.pedantic(lambda: _sweep(largest, sweep_seed, runs), rounds=1, iterations=1)
    headers = ["setting", "time (s)", "conductance", "support"]
    print()
    print(format_table(headers, rows, title="Figure 8(c,d): PR-Nibble on Yahoo proxy"))
    write_csv("fig08cd_pr_nibble", headers, rows)
    # Decreasing eps: monotonically growing support, improving conductance.
    supports = [row[3] for row in rows]
    phis = [row[2] for row in rows]
    assert supports == sorted(supports)
    assert phis[-1] <= phis[0] + 1e-12


def test_fig8ef_hk_pr(benchmark, largest, sweep_seed):
    runs = [
        (
            f"N={N} eps={eps:g}",
            lambda N=N, eps=eps: hk_pr_parallel(
                largest, sweep_seed, HKPRParams(t=10.0, taylor_degree=N, eps=eps)
            ),
        )
        for N, eps in HK_PR_GRID
    ]
    rows = benchmark.pedantic(lambda: _sweep(largest, sweep_seed, runs), rounds=1, iterations=1)
    headers = ["setting", "time (s)", "conductance", "support"]
    print()
    print(format_table(headers, rows, title="Figure 8(e,f): HK-PR on Yahoo proxy"))
    write_csv("fig08ef_hk_pr", headers, rows)
    by_setting = {row[0]: row for row in rows}
    assert by_setting["N=20 eps=1e-05"][3] >= by_setting["N=5 eps=0.001"][3]


def test_fig8gh_rand_hk_pr(benchmark, largest, sweep_seed):
    runs = [
        (
            f"K={K} N={n}",
            lambda K=K, n=n: rand_hk_pr_parallel(
                largest,
                sweep_seed,
                RandHKPRParams(t=10.0, max_walk_length=K, num_walks=n),
                rng=1,
            ),
        )
        for K, n in RAND_HK_PR_GRID
    ]
    rows = benchmark.pedantic(lambda: _sweep(largest, sweep_seed, runs), rounds=1, iterations=1)
    headers = ["setting", "time (s)", "conductance", "support"]
    print()
    print(format_table(headers, rows, title="Figure 8(g,h): rand-HK-PR on Yahoo proxy"))
    write_csv("fig08gh_rand_hk_pr", headers, rows)
    # More walks at fixed K improve (or match) conductance.
    by_setting = {row[0]: row for row in rows}
    assert by_setting["K=10 N=100000"][2] <= by_setting["K=10 N=10000"][2] + 0.05
