"""Figure 4 — original vs optimized sequential PR-Nibble.

The paper: "the optimized version always improves the running time, and by
a factor of 1.4-6.4x for the graphs that we experimented with", with both
versions returning clusters of the same conductance.  We report, per
proxy graph, the wall-clock times of both sequential update rules, the
normalized runtime (original = 1.0), the push-count ratio, and the
conductance agreement.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, write_csv
from repro.core import PRNibbleParams, pr_nibble_sequential, sweep_cut
from repro.graph import proxy_names
from repro.runtime import time_call

from paper_params import FIG4_PR_NIBBLE, seed_for

ALPHA = FIG4_PR_NIBBLE.alpha
EPS = FIG4_PR_NIBBLE.eps


def _run_experiment(graphs):
    rows = []
    for name in proxy_names():
        graph = graphs[name]
        seed = seed_for(graph)
        original, t_original = time_call(
            lambda: pr_nibble_sequential(
                graph, seed, PRNibbleParams(alpha=ALPHA, eps=EPS, optimized=False)
            )
        )
        optimized, t_optimized = time_call(
            lambda: pr_nibble_sequential(
                graph, seed, PRNibbleParams(alpha=ALPHA, eps=EPS, optimized=True)
            )
        )
        phi_original = sweep_cut(graph, original.vector).best_conductance
        phi_optimized = sweep_cut(graph, optimized.vector).best_conductance
        rows.append(
            [
                name,
                t_original,
                t_optimized,
                t_optimized / t_original if t_original > 0 else 1.0,
                original.pushes,
                optimized.pushes,
                original.pushes / max(optimized.pushes, 1),
                phi_original,
                phi_optimized,
            ]
        )
    return rows


def test_figure4_optimized_vs_original(benchmark, graphs):
    rows = benchmark.pedantic(lambda: _run_experiment(graphs), rounds=1, iterations=1)
    headers = [
        "graph",
        "orig (s)",
        "opt (s)",
        "opt/orig time",
        "orig pushes",
        "opt pushes",
        "push ratio",
        "phi orig",
        "phi opt",
    ]
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Figure 4: sequential PR-Nibble, alpha={ALPHA}, eps={EPS} "
            "(paper: optimized wins 1.4-6.4x)",
        )
    )
    write_csv("fig04_prnibble_opt", headers, rows)

    # Shape assertions: the optimization reduces pushes on every graph and
    # both rules return clusters of comparable conductance.
    for row in rows:
        name, _, _, time_ratio, orig_pushes, opt_pushes, push_ratio, phi_o, phi_n = row
        assert opt_pushes < orig_pushes, name
        assert push_ratio > 1.2, name
        assert phi_n <= phi_o * 1.5 + 1e-9, name
    # Aggregate: the optimized rule is faster on a clear majority of graphs
    # (tiny runs can be noise-dominated in wall-clock).
    faster = sum(1 for row in rows if row[3] < 1.0)
    assert faster >= 7, f"optimized faster on only {faster}/10 graphs"


@pytest.mark.parametrize("optimized", [False, True], ids=["original", "optimized"])
def test_sequential_push_kernel(benchmark, graphs, optimized):
    """Micro-benchmark of one sequential PR-Nibble run per update rule."""
    graph = graphs["soc-LJ"]
    seed = seed_for(graph)
    params = PRNibbleParams(alpha=ALPHA, eps=EPS, optimized=optimized)
    result = benchmark(lambda: pr_nibble_sequential(graph, seed, params))
    assert result.pushes > 0
