"""Table 2 — graph inventory: paper sizes vs proxy sizes.

Regenerates the paper's input-graph table with the proxies' actual vertex
and edge counts next to the paper-reported sizes, and benchmarks proxy
construction (the paper's 'graph loading' cost analogue).
"""

from __future__ import annotations

from repro.bench import format_table, write_csv
from repro.graph import PROXIES, load_proxy, proxy_names


def _rows(graphs):
    rows = []
    for name in proxy_names():
        spec = PROXIES[name]
        graph = graphs[name]
        rows.append(
            [
                name,
                spec.paper_vertices,
                spec.paper_edges,
                graph.num_vertices,
                graph.num_edges,
                spec.kind,
            ]
        )
    return rows


def test_table2_inventory(benchmark, graphs):
    rows = benchmark.pedantic(lambda: _rows(graphs), rounds=1, iterations=1)
    headers = ["graph", "paper n", "paper m", "proxy n", "proxy m", "proxy family"]
    print()
    print(format_table(headers, rows, title="Table 2: input graphs (paper vs proxy)"))
    write_csv("table2_graphs", headers, rows)
    assert len(rows) == 10
    for row in rows:
        assert row[3] > 0 and row[4] > 0
        # Proxies are deliberately scaled far below the paper's sizes.
        assert row[3] < row[1]


def test_proxy_construction_speed(benchmark):
    graph = benchmark(lambda: load_proxy("soc-LJ", scale=0.2, seed=99))
    assert graph.num_vertices > 0
