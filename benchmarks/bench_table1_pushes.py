"""Table 1 — push counts: sequential vs parallel PR-Nibble.

The paper's Table 1 reports, for seven real-world graphs (alpha=0.01,
eps=1e-7), the number of pushes of sequential PR-Nibble, the number of
pushes of parallel PR-Nibble, and the parallel iteration count.  The
relationships to reproduce: parallel pushes exceed sequential by at most
~1.6x (usually much less), and iterations are far fewer than pushes
("parallelism is abundant").
"""

from __future__ import annotations

from repro.bench import format_table, write_csv
from repro.core import pr_nibble_parallel, pr_nibble_sequential

from paper_params import TABLE1_GRAPHS, FIG4_PR_NIBBLE, seed_for


def _run_experiment(graphs):
    rows = []
    for name in TABLE1_GRAPHS:
        graph = graphs[name]
        seed = seed_for(graph)
        sequential = pr_nibble_sequential(graph, seed, FIG4_PR_NIBBLE)
        parallel = pr_nibble_parallel(graph, seed, FIG4_PR_NIBBLE)
        rows.append(
            [
                name,
                sequential.pushes,
                parallel.pushes,
                parallel.pushes / max(sequential.pushes, 1),
                parallel.iterations,
            ]
        )
    return rows


def test_table1_push_counts(benchmark, graphs):
    rows = benchmark.pedantic(lambda: _run_experiment(graphs), rounds=1, iterations=1)
    headers = ["graph", "pushes (seq)", "pushes (par)", "par/seq", "iterations (par)"]
    print()
    print(
        format_table(
            headers,
            rows,
            title=(
                f"Table 1: PR-Nibble pushes, alpha={FIG4_PR_NIBBLE.alpha}, "
                f"eps={FIG4_PR_NIBBLE.eps} (paper: par/seq <= 1.6, iterations << pushes)"
            ),
        )
    )
    write_csv("table1_pushes", headers, rows)

    for name, seq_pushes, par_pushes, ratio, iterations in rows:
        # The paper's band: parallel does at most ~1.6x the sequential
        # pushes and never substantially fewer.
        assert 0.9 <= ratio <= 2.0, f"{name}: par/seq push ratio {ratio:.2f}"
        assert iterations < par_pushes / 5, f"{name}: too few pushes per iteration"
