"""Sharded graph plane — resident memory and latency vs shard count.

The ROADMAP's memory-scaling scenario: a serving process should not need
the whole CSR resident to answer local queries.  Three serving models
over the same job list (seeds interior to the first shard — the locality
case sharding exists for):

* **whole** — the child process materialises the full CSR arrays (the
  every-worker-holds-the-graph model the sharded plane replaces) and
  runs the jobs against them.
* **sharded-K** — the child receives only the picklable shard handle of
  a K-way partition and serves through a ``max_resident=1`` lazy view
  with the halo cache disabled: exactly one shard mapped at peak, every
  cross-shard read paid as an attach/detach cycle.  This is the pure
  lazy-attach baseline whose p50 latency regressed as K grew.
* **sharded-K-halo** — the same view with its default halo cache: hot
  boundary-vertex adjacency rows are copied into a small byte-budget LRU
  on first touch and served from it afterwards, so repeat cross-shard
  reads cost a dict hit instead of a shard attach.

Each scenario runs in a fresh interpreter (no copy-on-write pages from
the parent muddying the accounting) and reports peak RSS plus per-job
latency and the view's attach/halo counters; outcomes are asserted
bit-identical to in-process serial execution.  Results go to
``results/bench_sharded.csv`` and ``BENCH_sharded.json``.  The headline
acceptance numbers (asserted outside smoke mode, where the ~50x-shrunk
proxies make the margins sub-noise): the ``max_resident=1`` runs' peak
RSS sits measurably below the whole-graph baseline, the halo run's RSS
stays within 10% of the halo-less figure (the cache is small by
construction), and the halo recovers at least half of the p50 latency
gap between the halo-less sharded run and the whole-graph model.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.bench import format_seconds, format_table, measure_probe, write_csv
from repro.engine import DiffusionJob, run_job
from repro.graph.sharded import ShardedCSR

GRAPH = "Twitter"  # largest-volume proxy: the biggest whole-graph footprint
SHARD_COUNTS = (2, 4, 8)
NUM_JOBS = 6
PARAMS = {"alpha": 0.05, "eps": 1e-4}
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def interior_jobs(graph):
    """Jobs seeded deep inside the *finest* partition's first shard, so the
    same seeds are interior to shard 0 at every shard count under test."""
    from repro.graph.sharded import plan_boundaries

    finest_cut = plan_boundaries(graph.offsets, max(SHARD_COUNTS))[1]
    seeds = np.linspace(0, max(finest_cut - 1, 1), NUM_JOBS).astype(np.int64)
    return [DiffusionJob.make(int(seed), params=dict(PARAMS)) for seed in seeds]


def test_sharded_resident_memory(benchmark, graphs):
    graph = graphs[GRAPH]
    jobs = interior_jobs(graph)
    reference = [
        run_job(graph, job, index=index, include_vector=False)
        for index, job in enumerate(jobs)
    ]
    checksum = sum(outcome.pushes for outcome in reference)
    graph_bytes = graph.offsets.nbytes + graph.neighbors.nbytes

    def measure():
        runs = {}
        runs["whole"] = measure_probe("whole", (graph.offsets, graph.neighbors), jobs)
        for count in SHARD_COUNTS:
            with ShardedCSR.create(graph, shards=count) as sharded:
                shard_bytes = max(sharded.shard_nbytes())
                # halo_bytes=0: the pure lazy-attach baseline ...
                runs[f"sharded-{count}"] = measure_probe(
                    "sharded", sharded.handle(), jobs, max_resident=1, halo_bytes=0
                )
                runs[f"sharded-{count}"]["shard_bytes"] = shard_bytes
                # ... vs the default halo cache serving hot boundary rows.
                runs[f"sharded-{count}-halo"] = measure_probe(
                    "sharded", sharded.handle(), jobs, max_resident=1
                )
                runs[f"sharded-{count}-halo"]["shard_bytes"] = shard_bytes
        return runs

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Same pushes in every serving model: the sharded children really ran
    # the same diffusions the in-process serial reference did — the halo
    # cache serves identical rows, it never approximates.
    for name, report in runs.items():
        assert report["pushes_checksum"] == checksum, name
    for count in SHARD_COUNTS:
        assert runs[f"sharded-{count}"]["resident_shards"] <= 1
        assert runs[f"sharded-{count}-halo"]["resident_shards"] <= 1
        # The halo really absorbed cross-shard reads: hits recorded, and
        # strictly fewer attach faults than the halo-less baseline
        # whenever that baseline had any cross-shard traffic to absorb.
        halo = runs[f"sharded-{count}-halo"]
        baseline = runs[f"sharded-{count}"]
        if baseline["lazy_attaches"] > count:
            assert halo["halo_hits"] > 0, count
            assert halo["lazy_attaches"] < baseline["lazy_attaches"], count

    headers = ["scenario", "peak RSS", "graph bytes mapped", "p50 latency", "max latency", "attaches", "halo hits"]
    rows = []
    csv_rows = []
    for name, report in runs.items():
        mapped = graph_bytes if name == "whole" else report["shard_bytes"]
        latencies = np.asarray(report["latencies"])
        rows.append(
            [
                name,
                f"{report['peak_rss_bytes'] / 1e6:.1f} MB",
                f"{mapped / 1e6:.2f} MB",
                format_seconds(float(np.percentile(latencies, 50))),
                format_seconds(float(latencies.max())),
                report["lazy_attaches"] if report["lazy_attaches"] is not None else "-",
                report["halo_hits"] if report["halo_hits"] is not None else "-",
            ]
        )
        csv_rows.append(
            [
                name,
                report["peak_rss_bytes"],
                mapped,
                float(np.percentile(latencies, 50)),
                float(latencies.mean()),
                float(latencies.max()),
                report["lazy_attaches"] if report["lazy_attaches"] is not None else "",
                report["halo_hits"] if report["halo_hits"] is not None else "",
                report["halo_misses"] if report["halo_misses"] is not None else "",
                report["halo_evictions"] if report["halo_evictions"] is not None else "",
            ]
        )
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Resident memory vs shard count: {GRAPH} proxy, {NUM_JOBS} "
            f"interior-seed jobs, max_resident=1, fresh-interpreter children",
        )
    )
    write_csv(
        "bench_sharded",
        [
            "scenario",
            "peak_rss_bytes",
            "graph_bytes_mapped",
            "p50_seconds",
            "mean_seconds",
            "max_seconds",
            "lazy_attaches",
            "halo_hits",
            "halo_misses",
            "halo_evictions",
        ],
        csv_rows,
    )

    def p50(name):
        return float(np.percentile(np.asarray(runs[name]["latencies"]), 50))

    whole_rss = runs["whole"]["peak_rss_bytes"]
    whole_p50 = p50("whole")
    summary = {
        "graph": GRAPH,
        "graph_bytes": graph_bytes,
        "jobs": NUM_JOBS,
        "max_resident_shards": 1,
        "smoke": SMOKE,
        "whole_peak_rss_bytes": whole_rss,
        "whole_p50_seconds": whole_p50,
        "sharded": {
            str(count): {
                "peak_rss_bytes": runs[f"sharded-{count}"]["peak_rss_bytes"],
                "rss_saved_bytes": whole_rss - runs[f"sharded-{count}"]["peak_rss_bytes"],
                "shard_bytes": runs[f"sharded-{count}"]["shard_bytes"],
                "lazy_attaches": runs[f"sharded-{count}"]["lazy_attaches"],
                "p50_seconds": p50(f"sharded-{count}"),
                "halo": {
                    "peak_rss_bytes": runs[f"sharded-{count}-halo"]["peak_rss_bytes"],
                    "lazy_attaches": runs[f"sharded-{count}-halo"]["lazy_attaches"],
                    "halo_hits": runs[f"sharded-{count}-halo"]["halo_hits"],
                    "halo_misses": runs[f"sharded-{count}-halo"]["halo_misses"],
                    "halo_evictions": runs[f"sharded-{count}-halo"]["halo_evictions"],
                    "p50_seconds": p50(f"sharded-{count}-halo"),
                },
            }
            for count in SHARD_COUNTS
        },
    }
    pathlib.Path("BENCH_sharded.json").write_text(json.dumps(summary, indent=2))
    print(json.dumps(summary, indent=2))

    # The acceptance criteria.  At smoke scale the proxies shrink ~50x and
    # every margin drops under allocator noise, so (as with the other
    # benchmarks) the perf asserts run at full scale only.
    if not SMOKE:
        for count in SHARD_COUNTS:
            nohalo_rss = runs[f"sharded-{count}"]["peak_rss_bytes"]
            halo_rss = runs[f"sharded-{count}-halo"]["peak_rss_bytes"]
            # 1. Serving interior seeds with one shard resident must beat
            # holding the whole graph — with or without the halo.
            assert nohalo_rss < whole_rss, (
                f"sharded-{count} peak RSS {nohalo_rss} >= whole {whole_rss}"
            )
            assert halo_rss < whole_rss, (
                f"sharded-{count}-halo peak RSS {halo_rss} >= whole {whole_rss}"
            )
            # 2. The halo's byte budget is tiny next to a shard: its RSS
            # must stay within 10% of the halo-less figure.
            assert halo_rss <= nohalo_rss * 1.10, (
                f"sharded-{count}-halo RSS {halo_rss} > 1.1x baseline {nohalo_rss}"
            )
            # 3. The halo must recover at least half of the p50 latency
            # the lazy-attach baseline gave up vs the whole-graph model.
            nohalo_p50 = p50(f"sharded-{count}")
            halo_p50 = p50(f"sharded-{count}-halo")
            if nohalo_p50 > whole_p50:
                budget = whole_p50 + 0.5 * (nohalo_p50 - whole_p50)
                assert halo_p50 <= budget, (
                    f"sharded-{count}-halo p50 {halo_p50:.4f}s recovers <50% of "
                    f"the gap (baseline {nohalo_p50:.4f}s, whole {whole_p50:.4f}s)"
                )
