"""Sharded graph plane — resident memory and latency vs shard count.

The ROADMAP's memory-scaling scenario: a serving process should not need
the whole CSR resident to answer local queries.  Two serving models over
the same job list (seeds interior to the first shard — the locality case
sharding exists for):

* **whole** — the child process materialises the full CSR arrays (the
  every-worker-holds-the-graph model the sharded plane replaces) and
  runs the jobs against them.
* **sharded-K** — the child receives only the picklable shard handle of
  a K-way partition and serves through a ``max_resident=1`` lazy view:
  exactly one shard mapped at peak.

Each scenario runs in a fresh interpreter (no copy-on-write pages from
the parent muddying the accounting) and reports peak RSS
(``ru_maxrss``) plus per-job latency; outcomes are asserted bit-identical
to in-process serial execution.  Results go to
``results/bench_sharded.csv`` and ``BENCH_sharded.json``.  The headline
acceptance number: the ``max_resident=1`` run's peak RSS sits measurably
below the whole-graph baseline (asserted outside smoke mode, where the
~50x-shrunk proxies make the margin sub-noise).
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.bench import format_seconds, format_table, measure_probe, write_csv
from repro.engine import DiffusionJob, run_job
from repro.graph.sharded import ShardedCSR

GRAPH = "Twitter"  # largest-volume proxy: the biggest whole-graph footprint
SHARD_COUNTS = (2, 4, 8)
NUM_JOBS = 6
PARAMS = {"alpha": 0.05, "eps": 1e-4}
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def interior_jobs(graph):
    """Jobs seeded deep inside the *finest* partition's first shard, so the
    same seeds are interior to shard 0 at every shard count under test."""
    from repro.graph.sharded import plan_boundaries

    finest_cut = plan_boundaries(graph.offsets, max(SHARD_COUNTS))[1]
    seeds = np.linspace(0, max(finest_cut - 1, 1), NUM_JOBS).astype(np.int64)
    return [DiffusionJob.make(int(seed), params=dict(PARAMS)) for seed in seeds]


def test_sharded_resident_memory(benchmark, graphs):
    graph = graphs[GRAPH]
    jobs = interior_jobs(graph)
    reference = [
        run_job(graph, job, index=index, include_vector=False)
        for index, job in enumerate(jobs)
    ]
    checksum = sum(outcome.pushes for outcome in reference)
    graph_bytes = graph.offsets.nbytes + graph.neighbors.nbytes

    def measure():
        runs = {}
        runs["whole"] = measure_probe("whole", (graph.offsets, graph.neighbors), jobs)
        for count in SHARD_COUNTS:
            with ShardedCSR.create(graph, shards=count) as sharded:
                runs[f"sharded-{count}"] = measure_probe(
                    "sharded", sharded.handle(), jobs, max_resident=1
                )
                runs[f"sharded-{count}"]["shard_bytes"] = max(sharded.shard_nbytes())
        return runs

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Same pushes in every serving model: the sharded children really ran
    # the same diffusions the in-process serial reference did.
    for name, report in runs.items():
        assert report["pushes_checksum"] == checksum, name
    for count in SHARD_COUNTS:
        assert runs[f"sharded-{count}"]["resident_shards"] <= 1

    headers = ["scenario", "peak RSS", "graph bytes mapped", "p50 latency", "max latency"]
    rows = []
    csv_rows = []
    for name, report in runs.items():
        mapped = graph_bytes if name == "whole" else report["shard_bytes"]
        latencies = np.asarray(report["latencies"])
        rows.append(
            [
                name,
                f"{report['peak_rss_bytes'] / 1e6:.1f} MB",
                f"{mapped / 1e6:.2f} MB",
                format_seconds(float(np.percentile(latencies, 50))),
                format_seconds(float(latencies.max())),
            ]
        )
        csv_rows.append(
            [
                name,
                report["peak_rss_bytes"],
                mapped,
                float(np.percentile(latencies, 50)),
                float(latencies.mean()),
                float(latencies.max()),
                report["lazy_attaches"] if report["lazy_attaches"] is not None else "",
            ]
        )
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Resident memory vs shard count: {GRAPH} proxy, {NUM_JOBS} "
            f"interior-seed jobs, max_resident=1, fresh-interpreter children",
        )
    )
    write_csv(
        "bench_sharded",
        [
            "scenario",
            "peak_rss_bytes",
            "graph_bytes_mapped",
            "p50_seconds",
            "mean_seconds",
            "max_seconds",
            "lazy_attaches",
        ],
        csv_rows,
    )
    whole_rss = runs["whole"]["peak_rss_bytes"]
    summary = {
        "graph": GRAPH,
        "graph_bytes": graph_bytes,
        "jobs": NUM_JOBS,
        "max_resident_shards": 1,
        "smoke": SMOKE,
        "whole_peak_rss_bytes": whole_rss,
        "sharded": {
            str(count): {
                "peak_rss_bytes": runs[f"sharded-{count}"]["peak_rss_bytes"],
                "rss_saved_bytes": whole_rss - runs[f"sharded-{count}"]["peak_rss_bytes"],
                "shard_bytes": runs[f"sharded-{count}"]["shard_bytes"],
                "lazy_attaches": runs[f"sharded-{count}"]["lazy_attaches"],
                "p50_seconds": float(
                    np.percentile(np.asarray(runs[f"sharded-{count}"]["latencies"]), 50)
                ),
            }
            for count in SHARD_COUNTS
        },
    }
    pathlib.Path("BENCH_sharded.json").write_text(json.dumps(summary, indent=2))
    print(json.dumps(summary, indent=2))

    # The acceptance criterion: serving interior seeds with one shard
    # resident must beat holding the whole graph.  At smoke scale the
    # proxies shrink ~50x and the margin drops under allocator noise, so
    # (as with the other benchmarks) the perf assert runs at full scale.
    if not SMOKE:
        for count in SHARD_COUNTS:
            assert runs[f"sharded-{count}"]["peak_rss_bytes"] < whole_rss, (
                f"sharded-{count} peak RSS "
                f"{runs[f'sharded-{count}']['peak_rss_bytes']} >= whole {whole_rss}"
            )
