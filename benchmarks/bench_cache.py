"""Result cache — warm-vs-cold NCP grid throughput.

The paper's NCP methodology re-runs near-identical PR-Nibble queries
across a (seed x alpha x eps) grid, and interactive serving repeats them
further still.  This benchmark measures what the result cache buys on
exactly that workload: one cold pass over a grid on the soc-LJ proxy
(every job diffuses), then a warm pass through the in-memory layer and a
warm pass through a fresh cache attached to the same on-disk store (as a
new process would see it).

Correctness is asserted, not just printed: every pass must produce the
bit-identical NCP profile, and the warm passes must perform zero
diffusions (all hits, via cache stats).  Set ``REPRO_BENCH_SMOKE=1`` (the
CI smoke job does) to keep the assertions but relax nothing else — the
speedup figures on tiny graphs are reported for trend tracking only.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.bench import batched_run, format_seconds, format_table, write_csv
from repro.cache import ResultCache
from repro.core.seeding import random_seeds
from repro.engine import BatchEngine, NCPReducer, job_grid

GRAPH = "soc-LJ"
NUM_SEEDS = 12
ALPHAS = (0.05, 0.01)
EPS_VALUES = (1e-4, 1e-5)


def _run_experiment(graph, cache_dir):
    seeds = random_seeds(graph, NUM_SEEDS, rng=3)
    jobs = list(job_grid(seeds, "pr-nibble", {"alpha": ALPHAS, "eps": EPS_VALUES}))
    runs = {}

    def reducer():
        return NCPReducer(graph.num_vertices)

    cold_cache = ResultCache.with_dir(cache_dir)
    engine = BatchEngine(graph, include_vectors=False, cache=cold_cache)
    runs["cold"] = batched_run(engine, jobs, reducer())
    runs["warm-memory"] = batched_run(engine, jobs, reducer())

    fresh = ResultCache.with_dir(cache_dir)  # what a new process would see
    disk_engine = BatchEngine(graph, include_vectors=False, cache=fresh)
    runs["warm-disk"] = batched_run(disk_engine, jobs, reducer())
    return runs, cold_cache, fresh, len(jobs)


def test_cache_warm_vs_cold(benchmark, graphs):
    graph = graphs[GRAPH]
    with tempfile.TemporaryDirectory() as cache_dir:
        runs, cold_cache, fresh, num_jobs = benchmark.pedantic(
            lambda: _run_experiment(graph, cache_dir), rounds=1, iterations=1
        )

    cold = runs["cold"]
    headers = ["pass", "jobs", "wall", "jobs/s", "speedup vs cold"]
    rows = [
        [
            name,
            run.stats.jobs,
            format_seconds(run.wall_seconds),
            f"{run.jobs_per_second:.1f}",
            f"{cold.wall_seconds / run.wall_seconds:.1f}x",
        ]
        for name, run in runs.items()
    ]
    print()
    print(
        format_table(
            headers,
            rows,
            title=f"Result cache: {GRAPH} proxy, {num_jobs}-job NCP grid "
            f"({NUM_SEEDS} seeds x {len(ALPHAS)} alphas x {len(EPS_VALUES)} eps)",
        )
    )
    print(f"cache (memory+disk): {cold_cache.stats.describe()}")
    print(f"cache (fresh, disk-served): {fresh.stats.describe()}")
    write_csv(
        "bench_cache",
        ["pass", "jobs", "wall_seconds", "jobs_per_second", "speedup_vs_cold"],
        [
            [
                name,
                run.stats.jobs,
                run.wall_seconds,
                run.jobs_per_second,
                cold.wall_seconds / run.wall_seconds,
            ]
            for name, run in runs.items()
        ],
    )

    # Cold pass misses everything; both warm passes perform zero
    # diffusions — all jobs replay from the cache.
    assert cold_cache.stats.misses == num_jobs
    assert cold_cache.stats.hits == num_jobs  # the warm-memory pass
    assert fresh.stats.misses == 0 and fresh.stats.hits == num_jobs
    # Determinism contract: every pass yields the bit-identical profile.
    for name, run in runs.items():
        assert run.value.runs == cold.value.runs, name
        assert np.array_equal(run.value.conductance, cold.value.conductance), name
    # Replaying from memory must beat re-diffusing, on any host.  (The
    # disk pass additionally pays deserialisation; assert only off the
    # tiny smoke graphs, where payload IO can rival the diffusions.)
    assert runs["warm-memory"].wall_seconds < cold.wall_seconds
    if os.environ.get("REPRO_BENCH_SMOKE") != "1":
        assert runs["warm-disk"].wall_seconds < cold.wall_seconds
